package gesture

import (
	"fmt"
	"math"
	"time"

	"dbtouch/internal/touchos"
)

// EventKind classifies a recognized gesture event.
type EventKind uint8

// Gesture kinds (paper Figure 1).
const (
	// Tap is a quick touch with negligible movement: reveal one value.
	Tap EventKind = iota
	// SlideBegan/SlideStep/SlideEnded bracket the main query-processing
	// gesture: every SlideStep is "a request to run an operator over part
	// of the data".
	SlideBegan
	SlideStep
	SlideEnded
	// PinchStep/PinchEnded report a running two-finger zoom; Scale > 1 is
	// zoom-in (next level of detail), < 1 zoom-out.
	PinchStep
	PinchEnded
	// RotateStep/RotateEnded report a two-finger rotation; a completed
	// quarter turn flips the physical design (row-store ↔ column-store).
	RotateStep
	RotateEnded
	// Cancelled reports an aborted touch sequence.
	Cancelled
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case Tap:
		return "tap"
	case SlideBegan:
		return "slide-began"
	case SlideStep:
		return "slide-step"
	case SlideEnded:
		return "slide-ended"
	case PinchStep:
		return "pinch-step"
	case PinchEnded:
		return "pinch-ended"
	case RotateStep:
		return "rotate-step"
	case RotateEnded:
		return "rotate-ended"
	case Cancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is a recognized gesture sample.
type Event struct {
	Kind EventKind
	// Loc is the touch location (midpoint for two-finger gestures) in
	// screen coordinates.
	Loc  touchos.Point
	Time time.Duration
	// Velocity is the smoothed finger velocity in cm/s (slides only).
	Velocity touchos.Point
	// Scale is the cumulative pinch factor since the pinch began.
	Scale float64
	// Angle is the cumulative rotation in radians since the rotate began.
	Angle float64
}

// Config tunes recognition thresholds.
type Config struct {
	// TapSlop is the maximum movement (cm) for a touch to count as a tap.
	TapSlop float64
	// TapMaxDuration is the longest press that still counts as a tap.
	TapMaxDuration time.Duration
	// PinchThreshold is the minimum |log2(scale)| before a two-finger
	// gesture commits to pinch.
	PinchThreshold float64
	// RotateThreshold is the minimum |angle| (radians) before a
	// two-finger gesture commits to rotation.
	RotateThreshold float64
	// VelocityAlpha is the EMA smoothing factor for slide velocity.
	VelocityAlpha float64
}

// DefaultConfig returns thresholds tuned for centimeter coordinates.
func DefaultConfig() Config {
	return Config{
		TapSlop:         0.2,
		TapMaxDuration:  300 * time.Millisecond,
		PinchThreshold:  0.1,
		RotateThreshold: 0.15,
		VelocityAlpha:   0.4,
	}
}

type fingerState struct {
	down      bool
	start     touchos.Point
	startTime time.Duration
	last      touchos.Point
	lastTime  time.Duration
	moved     bool
	velocity  touchos.Point
}

// twoFingerMode tracks what a two-finger gesture has committed to.
type twoFingerMode uint8

const (
	twoFingerUndecided twoFingerMode = iota
	twoFingerPinch
	twoFingerRotate
)

// Recognizer converts delivered touch events into gesture events. Feed it
// events in time order; it is stateful across calls.
type Recognizer struct {
	cfg     Config
	fingers [2]fingerState
	nActive int

	// two-finger gesture state
	mode        twoFingerMode
	startSpread float64
	startAngle  float64
	lastScale   float64
	lastAngle   float64
	// endedMode holds the committed mode after the first finger lifts so
	// the gesture-end event fires when the second lifts, with both
	// fingers at their final locations.
	endedMode twoFingerMode
}

// NewRecognizer returns a recognizer with the given config; a zero Config
// selects DefaultConfig.
func NewRecognizer(cfg Config) *Recognizer {
	if cfg == (Config{}) {
		cfg = DefaultConfig()
	}
	return &Recognizer{cfg: cfg, lastScale: 1}
}

// Feed consumes one touch event and returns zero or more recognized
// gesture events.
func (r *Recognizer) Feed(e touchos.TouchEvent) []Event {
	if e.Finger < 0 || e.Finger > 1 {
		return nil // only two simultaneous fingers are modeled
	}
	f := &r.fingers[e.Finger]
	switch e.Phase {
	case touchos.TouchBegan:
		if !f.down {
			r.nActive++
		}
		*f = fingerState{down: true, start: e.Loc, startTime: e.Time, last: e.Loc, lastTime: e.Time}
		if r.nActive == 2 {
			r.mode = twoFingerUndecided
			r.startSpread = r.spread()
			r.startAngle = r.angle()
			r.lastScale = 1
			r.lastAngle = 0
		}
		return nil
	case touchos.TouchMoved:
		if !f.down {
			return nil
		}
		events := r.onMove(f, e)
		f.last = e.Loc
		f.lastTime = e.Time
		return events
	case touchos.TouchEnded:
		if !f.down {
			return nil
		}
		// The end event carries the finger's final location (any
		// undelivered move was coalesced into it).
		f.last = e.Loc
		f.lastTime = e.Time
		events := r.onEnd(f, e)
		f.down = false
		r.nActive--
		return events
	case touchos.TouchCancelled:
		if !f.down {
			return nil
		}
		f.down = false
		r.nActive--
		r.mode = twoFingerUndecided
		return []Event{{Kind: Cancelled, Loc: e.Loc, Time: e.Time}}
	}
	return nil
}

func (r *Recognizer) onMove(f *fingerState, e touchos.TouchEvent) []Event {
	// Update smoothed velocity.
	if dt := e.Time - f.lastTime; dt > 0 {
		inst := touchos.Point{
			X: (e.Loc.X - f.last.X) / dt.Seconds(),
			Y: (e.Loc.Y - f.last.Y) / dt.Seconds(),
		}
		a := r.cfg.VelocityAlpha
		f.velocity = touchos.Point{
			X: a*inst.X + (1-a)*f.velocity.X,
			Y: a*inst.Y + (1-a)*f.velocity.Y,
		}
	}
	if r.nActive == 2 {
		return r.twoFingerMove(e)
	}
	var out []Event
	if !f.moved && e.Loc.Dist(f.start) > r.cfg.TapSlop {
		f.moved = true
		out = append(out, Event{Kind: SlideBegan, Loc: f.start, Time: f.startTime})
	}
	if f.moved {
		out = append(out, Event{Kind: SlideStep, Loc: e.Loc, Time: e.Time, Velocity: f.velocity})
	}
	return out
}

func (r *Recognizer) onEnd(f *fingerState, e touchos.TouchEvent) []Event {
	if r.nActive == 2 {
		// First finger up: stash the committed mode; the gesture-end
		// event fires when the second finger lifts, so both fingers'
		// final locations contribute to the final scale/angle.
		r.endedMode = r.mode
		r.mode = twoFingerUndecided
		return nil
	}
	if r.endedMode != twoFingerUndecided {
		// Second finger of a two-finger gesture lifting now.
		mode := r.endedMode
		r.endedMode = twoFingerUndecided
		mid := r.midpoint()
		switch mode {
		case twoFingerPinch:
			scale := r.lastScale
			if r.startSpread > 0 {
				scale = r.spread() / r.startSpread
			}
			return []Event{{Kind: PinchEnded, Loc: mid, Time: e.Time, Scale: scale}}
		case twoFingerRotate:
			return []Event{{Kind: RotateEnded, Loc: mid, Time: e.Time, Angle: normalizeAngle(r.angle() - r.startAngle)}}
		default:
			return nil
		}
	}
	if f.moved {
		return []Event{{Kind: SlideEnded, Loc: e.Loc, Time: e.Time, Velocity: f.velocity}}
	}
	if e.Time-f.startTime <= r.cfg.TapMaxDuration && e.Loc.Dist(f.start) <= r.cfg.TapSlop {
		return []Event{{Kind: Tap, Loc: e.Loc, Time: e.Time}}
	}
	// A long motionless press: treat as a degenerate slide (press-hold).
	return []Event{
		{Kind: SlideBegan, Loc: f.start, Time: f.startTime},
		{Kind: SlideEnded, Loc: e.Loc, Time: e.Time},
	}
}

func (r *Recognizer) twoFingerMove(e touchos.TouchEvent) []Event {
	if !r.fingers[0].down || !r.fingers[1].down {
		return nil
	}
	// The moving finger's state still holds its previous location until
	// Feed updates it, but spread/angle use .last of the *other* finger
	// and the new location of this one; approximating with both .last
	// plus this event is fine at digitizer rates, so recompute after a
	// temporary update.
	saved := r.fingers[e.Finger].last
	r.fingers[e.Finger].last = e.Loc
	spread := r.spread()
	angle := r.angle()
	mid := r.midpoint()
	r.fingers[e.Finger].last = saved

	scale := 1.0
	if r.startSpread > 0 {
		scale = spread / r.startSpread
	}
	dAngle := normalizeAngle(angle - r.startAngle)

	if r.mode == twoFingerUndecided {
		switch {
		case math.Abs(math.Log2(scale)) >= r.cfg.PinchThreshold:
			r.mode = twoFingerPinch
		case math.Abs(dAngle) >= r.cfg.RotateThreshold:
			r.mode = twoFingerRotate
		default:
			return nil
		}
	}
	switch r.mode {
	case twoFingerPinch:
		r.lastScale = scale
		return []Event{{Kind: PinchStep, Loc: mid, Time: e.Time, Scale: scale}}
	case twoFingerRotate:
		r.lastAngle = dAngle
		return []Event{{Kind: RotateStep, Loc: mid, Time: e.Time, Angle: dAngle}}
	}
	return nil
}

func (r *Recognizer) spread() float64 {
	return r.fingers[0].last.Dist(r.fingers[1].last)
}

func (r *Recognizer) angle() float64 {
	d := r.fingers[1].last.Sub(r.fingers[0].last)
	return math.Atan2(d.Y, d.X)
}

func (r *Recognizer) midpoint() touchos.Point {
	a, b := r.fingers[0].last, r.fingers[1].last
	return touchos.Point{X: (a.X + b.X) / 2, Y: (a.Y + b.Y) / 2}
}

// normalizeAngle folds an angle into (-π, π].
func normalizeAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}
