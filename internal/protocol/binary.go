package protocol

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"dbtouch/internal/core"
)

// Binary columnar result frames — the v2 wire encoding of result
// streams. JSON/NDJSON boxes every value ("agg":12.5 costs ~12 bytes
// plus the key); at millions of subscribers the wire cost of boxing
// dominates the server. A binary frame instead ships one run of results
// that share (object, kind) as typed columns:
//
//	frame   := u32 LE payloadLen | payload         (length-prefixed)
//	payload := magic 0xDB | bver u8 | fkind u8 | rkind u8
//	           session (uvarint len + bytes)
//	           objectID uvarint | epoch uvarint | count uvarint
//	           sections*
//	section := tag u8 | uvarint byteLen | bytes
//
// Integer columns (tuple ids, windows, times) encode as zigzag varints,
// delta-coded against the previous row where values are near-monotone
// (tuple ids under a slide advance by the touch gap; times are
// nondecreasing), so a typical row costs 1-2 bytes per live column.
// Float columns (the aggregate) ship as raw little-endian IEEE754 —
// exact, and already only 8 bytes. String columns (scan values, group
// keys) are length-prefixed UTF-8. A section whose rows are all
// zero/empty is omitted entirely and decodes back as zeros, so a scan
// frame never pays for group keys and an aggregate frame never pays for
// strings.
//
// The decoder is a trust boundary: every length is bounded before
// allocation (MaxBinaryFrameBytes for the payload, MaxBinaryFrameResults
// for the row count), truncated or corrupt input returns an error, and
// unknown section tags are skipped by their declared length so the
// format can grow columns without breaking old readers.
//
// JSON/NDJSON remains the v1 fallback and the record/replay ground
// truth: DecodeBinaryFrame yields exactly the ResultFrame values
// FrameResults would have produced (asserted by TestBinaryRoundTrip).

// Binary framing constants.
const (
	// binaryMagic is the first payload byte of every binary frame.
	binaryMagic = 0xDB
	// BinaryVersion is the binary frame format version.
	BinaryVersion = 1
	// frameKindResults marks a frame carrying result rows. Other frame
	// kinds may be added; decoders reject kinds they do not know.
	frameKindResults = 1

	// MaxBinaryFrameBytes bounds one frame payload; a length prefix past
	// it is rejected before any allocation.
	MaxBinaryFrameBytes = 16 << 20
	// MaxBinaryFrameResults bounds the row count one frame may declare,
	// capping decoder allocation at a few MB even for adversarial input.
	MaxBinaryFrameResults = 1 << 16
)

// BinaryContentType is the negotiated content type for binary framed
// streams; NDJSONContentType is the v1 fallback.
const (
	BinaryContentType = "application/x-dbtouch-bin"
	NDJSONContentType = "application/x-ndjson"
)

// Column section tags.
const (
	secTupleID  = 1  // zigzag delta varint
	secCol      = 2  // zigzag varint
	secAgg      = 3  // raw float64 LE × count
	secN        = 4  // zigzag varint
	secWindowLo = 5  // zigzag delta varint
	secWindowHi = 6  // zigzag delta varint
	secLevel    = 7  // zigzag varint
	secTime     = 8  // zigzag delta varint (ns)
	secFadeAt   = 9  // zigzag delta varint (ns)
	secLatency  = 10 // zigzag delta varint (ns)
	secValue    = 11 // uvarint len + bytes per row
	secGroupKey = 12 // uvarint len + bytes per row
	secMatches  = 13 // zigzag varint
)

// BinaryFrameHeader carries the per-frame provenance every row shares.
type BinaryFrameHeader struct {
	// Session is the emitting session id (empty for direct encodes).
	Session string
	// ObjectID is the kernel object every row belongs to.
	ObjectID int
	// Epoch is the live-table snapshot epoch the rows were produced
	// against (0 when the object is not live or the epoch is unknown).
	Epoch uint64
	// Kind is the shared result kind (the ResultFrame kind string).
	Kind string
}

// zigzag maps a signed value to an unsigned one with small absolute
// values staying small.
func zigzag(v int64) uint64 { return uint64(v)<<1 ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// intColumn accumulates one integer section: zigzag varints, optionally
// delta-coded, omitted when every row is zero.
type intColumn struct {
	tag   byte
	delta bool
	prev  int64
	buf   []byte
	live  bool
}

func (c *intColumn) push(v int64) {
	enc := v
	if c.delta {
		enc = v - c.prev
		c.prev = v
	}
	if v != 0 {
		c.live = true
	}
	c.buf = binary.AppendUvarint(c.buf, zigzag(enc))
}

// strColumn accumulates one string section, omitted when all rows are
// empty.
type strColumn struct {
	tag  byte
	buf  []byte
	live bool
}

func (c *strColumn) push(s string) {
	if s != "" {
		c.live = true
	}
	c.buf = binary.AppendUvarint(c.buf, uint64(len(s)))
	c.buf = append(c.buf, s...)
}

// appendSection writes a section (tag, length, payload) if the column
// observed any non-zero row.
func appendSection(dst []byte, tag byte, payload []byte, live bool) []byte {
	if !live {
		return dst
	}
	dst = append(dst, tag)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// AppendBinaryResults encodes results as binary frames appended to dst.
// Consecutive results sharing (ObjectID, Kind) form one columnar frame;
// a stream of interleaved objects produces one frame per run. Epoch
// stamps every produced frame (pass 0 when unknown).
func AppendBinaryResults(dst []byte, session string, epoch uint64, results []core.Result) []byte {
	for len(results) > 0 {
		run := 1
		for run < len(results) && run < MaxBinaryFrameResults &&
			results[run].ObjectID == results[0].ObjectID && results[run].Kind == results[0].Kind {
			run++
		}
		dst = appendBinaryFrame(dst, session, epoch, results[:run])
		results = results[run:]
	}
	return dst
}

// appendBinaryFrame encodes one run (same object, same kind).
func appendBinaryFrame(dst []byte, session string, epoch uint64, run []core.Result) []byte {
	payload := make([]byte, 0, 64+len(run)*16)
	payload = append(payload, binaryMagic, BinaryVersion, frameKindResults, byte(run[0].Kind))
	payload = binary.AppendUvarint(payload, uint64(len(session)))
	payload = append(payload, session...)
	payload = binary.AppendUvarint(payload, uint64(run[0].ObjectID))
	payload = binary.AppendUvarint(payload, epoch)
	payload = binary.AppendUvarint(payload, uint64(len(run)))

	// The tuple-id section is always emitted, even all-zero: it gives
	// every legitimate frame at least one payload byte per row, which is
	// the invariant the decoder's allocation guard (count ≤ payload
	// bytes) rests on.
	tupleID := intColumn{tag: secTupleID, delta: true, live: true}
	col := intColumn{tag: secCol}
	n := intColumn{tag: secN}
	windowLo := intColumn{tag: secWindowLo, delta: true}
	windowHi := intColumn{tag: secWindowHi, delta: true}
	level := intColumn{tag: secLevel}
	tm := intColumn{tag: secTime, delta: true}
	fadeAt := intColumn{tag: secFadeAt, delta: true}
	latency := intColumn{tag: secLatency, delta: true}
	matches := intColumn{tag: secMatches}
	value := strColumn{tag: secValue}
	groupKey := strColumn{tag: secGroupKey}
	var agg []byte
	aggLive := false

	for _, r := range run {
		tupleID.push(int64(r.TupleID))
		col.push(int64(r.Col))
		n.push(r.N)
		windowLo.push(int64(r.WindowLo))
		windowHi.push(int64(r.WindowHi))
		level.push(int64(r.Level))
		tm.push(int64(r.Time))
		fadeAt.push(int64(r.FadeAt))
		latency.push(int64(r.Latency))
		matches.push(int64(len(r.Matches)))
		groupKey.push(r.GroupKey)
		// The wire carries the rendered value — same contract as
		// FrameResult, which renders only scan and tuple kinds.
		switch r.Kind {
		case core.ScanValue:
			value.push(r.Value.String())
		case core.TuplePeek:
			value.push(fmt.Sprintf("%v", r.Tuple))
		default:
			value.push("")
		}
		bits := math.Float64bits(r.Agg)
		if bits != 0 {
			aggLive = true
		}
		agg = binary.LittleEndian.AppendUint64(agg, bits)
	}

	payload = appendSection(payload, tupleID.tag, tupleID.buf, tupleID.live)
	payload = appendSection(payload, col.tag, col.buf, col.live)
	payload = appendSection(payload, secAgg, agg, aggLive)
	payload = appendSection(payload, n.tag, n.buf, n.live)
	payload = appendSection(payload, windowLo.tag, windowLo.buf, windowLo.live)
	payload = appendSection(payload, windowHi.tag, windowHi.buf, windowHi.live)
	payload = appendSection(payload, level.tag, level.buf, level.live)
	payload = appendSection(payload, tm.tag, tm.buf, tm.live)
	payload = appendSection(payload, fadeAt.tag, fadeAt.buf, fadeAt.live)
	payload = appendSection(payload, latency.tag, latency.buf, latency.live)
	payload = appendSection(payload, value.tag, value.buf, value.live)
	payload = appendSection(payload, groupKey.tag, groupKey.buf, groupKey.live)
	payload = appendSection(payload, matches.tag, matches.buf, matches.live)

	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// binReader walks one frame payload with bounds checking on every read.
type binReader struct {
	buf []byte
	pos int
}

func (r *binReader) len() int { return len(r.buf) - r.pos }

func (r *binReader) byte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, fmt.Errorf("protocol: binary frame truncated at byte %d", r.pos)
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("protocol: binary frame: bad varint at byte %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *binReader) varint() (int64, error) {
	u, err := r.uvarint()
	return unzigzag(u), err
}

func (r *binReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.len() < n {
		return nil, fmt.Errorf("protocol: binary frame: need %d bytes at %d, have %d", n, r.pos, r.len())
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

// decodeIntSection fills out[i] for each row from a zigzag varint
// section, undoing delta coding when delta is set.
func decodeIntSection(data []byte, count int, delta bool, set func(i int, v int64)) error {
	r := binReader{buf: data}
	var prev int64
	for i := 0; i < count; i++ {
		v, err := r.varint()
		if err != nil {
			return err
		}
		if delta {
			v += prev
			prev = v
		}
		set(i, v)
	}
	if r.len() != 0 {
		return fmt.Errorf("protocol: binary frame: %d trailing bytes in section", r.len())
	}
	return nil
}

// decodeStrSection fills out[i] from a length-prefixed string section.
func decodeStrSection(data []byte, count int, set func(i int, s string)) error {
	r := binReader{buf: data}
	for i := 0; i < count; i++ {
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(r.len()) {
			return fmt.Errorf("protocol: binary frame: string of %d bytes exceeds section", n)
		}
		b, err := r.bytes(int(n))
		if err != nil {
			return err
		}
		set(i, string(b))
	}
	if r.len() != 0 {
		return fmt.Errorf("protocol: binary frame: %d trailing bytes in string section", r.len())
	}
	return nil
}

// DecodeBinaryFrame decodes one frame payload (the bytes after the u32
// length prefix) into its header and rows. The rows are exactly what
// FrameResults would have rendered for the same results — the byte
// equivalence the version gate guarantees.
func DecodeBinaryFrame(payload []byte) (BinaryFrameHeader, []ResultFrame, error) {
	var hdr BinaryFrameHeader
	if len(payload) > MaxBinaryFrameBytes {
		return hdr, nil, fmt.Errorf("protocol: binary frame payload %d bytes exceeds cap %d", len(payload), MaxBinaryFrameBytes)
	}
	r := binReader{buf: payload}
	magic, err := r.byte()
	if err != nil {
		return hdr, nil, err
	}
	if magic != binaryMagic {
		return hdr, nil, fmt.Errorf("protocol: binary frame: bad magic 0x%02x", magic)
	}
	ver, err := r.byte()
	if err != nil {
		return hdr, nil, err
	}
	if ver < 1 || ver > BinaryVersion {
		return hdr, nil, fmt.Errorf("protocol: unsupported binary frame version %d (speaking %d)", ver, BinaryVersion)
	}
	fkind, err := r.byte()
	if err != nil {
		return hdr, nil, err
	}
	if fkind != frameKindResults {
		return hdr, nil, fmt.Errorf("protocol: unknown binary frame kind %d", fkind)
	}
	rkind, err := r.byte()
	if err != nil {
		return hdr, nil, err
	}
	hdr.Kind = core.ResultKind(rkind).String()
	sessLen, err := r.uvarint()
	if err != nil {
		return hdr, nil, err
	}
	if sessLen > uint64(r.len()) {
		return hdr, nil, fmt.Errorf("protocol: binary frame: session of %d bytes exceeds payload", sessLen)
	}
	sess, err := r.bytes(int(sessLen))
	if err != nil {
		return hdr, nil, err
	}
	hdr.Session = string(sess)
	objectID, err := r.uvarint()
	if err != nil {
		return hdr, nil, err
	}
	if objectID > math.MaxInt32 {
		return hdr, nil, fmt.Errorf("protocol: binary frame: object id %d out of range", objectID)
	}
	hdr.ObjectID = int(objectID)
	if hdr.Epoch, err = r.uvarint(); err != nil {
		return hdr, nil, err
	}
	count, err := r.uvarint()
	if err != nil {
		return hdr, nil, err
	}
	if count == 0 || count > MaxBinaryFrameResults {
		return hdr, nil, fmt.Errorf("protocol: binary frame: row count %d out of range [1, %d]", count, MaxBinaryFrameResults)
	}
	// Allocation stays proportional to input: every legitimate frame
	// carries at least one section byte per row (the tuple-id column is
	// never omitted), so a tiny payload cannot claim a huge row count.
	if count > uint64(len(payload)) {
		return hdr, nil, fmt.Errorf("protocol: binary frame: row count %d exceeds payload size %d", count, len(payload))
	}
	frames := make([]ResultFrame, count)
	for i := range frames {
		frames[i].Kind = hdr.Kind
		frames[i].ObjectID = hdr.ObjectID
	}

	seen := make(map[byte]bool)
	for r.len() > 0 {
		tag, err := r.byte()
		if err != nil {
			return hdr, nil, err
		}
		secLen, err := r.uvarint()
		if err != nil {
			return hdr, nil, err
		}
		if secLen > uint64(r.len()) {
			return hdr, nil, fmt.Errorf("protocol: binary frame: section %d of %d bytes exceeds payload", tag, secLen)
		}
		data, err := r.bytes(int(secLen))
		if err != nil {
			return hdr, nil, err
		}
		if seen[tag] {
			return hdr, nil, fmt.Errorf("protocol: binary frame: duplicate section %d", tag)
		}
		seen[tag] = true
		if err := decodeSection(tag, data, frames); err != nil {
			return hdr, nil, err
		}
	}
	return hdr, frames, nil
}

// decodeSection dispatches one section into the row columns. Unknown
// tags are skipped (forward compatibility: new columns, old reader).
func decodeSection(tag byte, data []byte, frames []ResultFrame) error {
	count := len(frames)
	switch tag {
	case secTupleID:
		return decodeIntSection(data, count, true, func(i int, v int64) { frames[i].TupleID = int(v) })
	case secCol:
		return decodeIntSection(data, count, false, func(i int, v int64) { frames[i].Col = int(v) })
	case secAgg:
		if len(data) != count*8 {
			return fmt.Errorf("protocol: binary frame: agg section %d bytes, want %d", len(data), count*8)
		}
		for i := 0; i < count; i++ {
			frames[i].Agg = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		}
		return nil
	case secN:
		return decodeIntSection(data, count, false, func(i int, v int64) { frames[i].N = v })
	case secWindowLo:
		return decodeIntSection(data, count, true, func(i int, v int64) { frames[i].WindowLo = int(v) })
	case secWindowHi:
		return decodeIntSection(data, count, true, func(i int, v int64) { frames[i].WindowHi = int(v) })
	case secLevel:
		return decodeIntSection(data, count, false, func(i int, v int64) { frames[i].Level = int(v) })
	case secTime:
		return decodeIntSection(data, count, true, func(i int, v int64) { frames[i].Time = time.Duration(v) })
	case secFadeAt:
		return decodeIntSection(data, count, true, func(i int, v int64) { frames[i].FadeAt = time.Duration(v) })
	case secLatency:
		return decodeIntSection(data, count, true, func(i int, v int64) { frames[i].Latency = time.Duration(v) })
	case secValue:
		return decodeStrSection(data, count, func(i int, s string) { frames[i].Value = s })
	case secGroupKey:
		return decodeStrSection(data, count, func(i int, s string) { frames[i].GroupKey = s })
	case secMatches:
		return decodeIntSection(data, count, false, func(i int, v int64) { frames[i].Matches = int(v) })
	default:
		return nil
	}
}

// BinaryScanner reads a stream of length-prefixed binary frames and
// yields their rows one at a time — the client-side counterpart of the
// NDJSON decoder, so both negotiated encodings drain through the same
// loop.
type BinaryScanner struct {
	r   *bufio.Reader
	cur []ResultFrame
	hdr BinaryFrameHeader
}

// NewBinaryScanner wraps r.
func NewBinaryScanner(r io.Reader) *BinaryScanner {
	return &BinaryScanner{r: bufio.NewReader(r)}
}

// Header reports the header of the frame the most recent row came from.
func (s *BinaryScanner) Header() BinaryFrameHeader { return s.hdr }

// Next returns the next result row. It returns io.EOF at a clean end of
// stream and a decoding error on corrupt input.
func (s *BinaryScanner) Next() (ResultFrame, error) {
	for len(s.cur) == 0 {
		var prefix [4]byte
		if _, err := io.ReadFull(s.r, prefix[:]); err != nil {
			if err == io.ErrUnexpectedEOF {
				return ResultFrame{}, fmt.Errorf("protocol: binary stream: truncated length prefix")
			}
			return ResultFrame{}, err
		}
		n := binary.LittleEndian.Uint32(prefix[:])
		if n == 0 || n > MaxBinaryFrameBytes {
			return ResultFrame{}, fmt.Errorf("protocol: binary stream: frame length %d out of range [1, %d]", n, MaxBinaryFrameBytes)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(s.r, payload); err != nil {
			return ResultFrame{}, fmt.Errorf("protocol: binary stream: truncated frame: %v", err)
		}
		hdr, frames, err := DecodeBinaryFrame(payload)
		if err != nil {
			return ResultFrame{}, err
		}
		s.hdr = hdr
		s.cur = frames
	}
	f := s.cur[0]
	s.cur = s.cur[1:]
	return f, nil
}
