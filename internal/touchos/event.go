package touchos

import (
	"fmt"
	"time"
)

// TouchPhase is the lifecycle stage of a touch event.
type TouchPhase uint8

// Touch phases, mirroring UITouchPhase.
const (
	TouchBegan TouchPhase = iota
	TouchMoved
	TouchEnded
	TouchCancelled
)

// String names the phase.
func (p TouchPhase) String() string {
	switch p {
	case TouchBegan:
		return "began"
	case TouchMoved:
		return "moved"
	case TouchEnded:
		return "ended"
	case TouchCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("TouchPhase(%d)", uint8(p))
	}
}

// TouchEvent is one digitizer sample: a finger at a screen location at a
// virtual time.
type TouchEvent struct {
	// Finger distinguishes simultaneous touches (0 and 1 for a pinch).
	Finger int
	Phase  TouchPhase
	// Loc is the touch location in screen (root view) coordinates.
	Loc Point
	// Time is the virtual timestamp the digitizer sampled the touch.
	Time time.Duration
}

// String renders the event for debugging.
func (e TouchEvent) String() string {
	return fmt.Sprintf("touch{f%d %s (%.2f,%.2f) @%v}", e.Finger, e.Phase, e.Loc.X, e.Loc.Y, e.Time)
}

// DigitizerHz is the default raw touch sampling rate. Capacitive panels of
// the iPad 1 era sampled at about 60 Hz; what limits dbTouch throughput is
// not this rate but how fast the kernel drains the queue (see Dispatcher).
const DigitizerHz = 60.0
