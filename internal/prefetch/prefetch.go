// Package prefetch implements gesture extrapolation and data prefetching
// (paper §2.6 "Prefetching Data"): "dbTouch can extrapolate the gesture
// progression (speed and direction) and fetch the expected entries such
// that they are readily available if the gesture resumes."
//
// The Extrapolator tracks tuple-id velocity with exponential smoothing;
// the Prefetcher spends kernel idle time (gaps between delivered touches,
// reported by the dispatcher) warming the blocks the gesture is predicted
// to reach next.
package prefetch

import (
	"time"

	"dbtouch/internal/iomodel"
)

// Extrapolator estimates where a slide gesture is heading in tuple-id
// space.
type Extrapolator struct {
	// Alpha is the EMA smoothing factor in (0, 1]; zero selects 0.4.
	Alpha float64

	lastID     int
	lastTime   time.Duration
	velocity   float64 // tuples per second, signed
	interTouch time.Duration
	observed   int
}

// Observe records that the gesture touched tuple id at virtual time t.
func (e *Extrapolator) Observe(id int, t time.Duration) {
	alpha := e.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.4
	}
	if e.observed > 0 {
		dt := t - e.lastTime
		if dt > 0 {
			inst := float64(id-e.lastID) / dt.Seconds()
			e.velocity = alpha*inst + (1-alpha)*e.velocity
			e.interTouch = time.Duration(alpha*float64(dt) + (1-alpha)*float64(e.interTouch))
		}
	}
	e.lastID = id
	e.lastTime = t
	e.observed++
}

// Velocity reports the smoothed tuple velocity (tuples/second, signed by
// direction).
func (e *Extrapolator) Velocity() float64 { return e.velocity }

// Direction reports the current movement direction: -1, 0, or +1.
func (e *Extrapolator) Direction() int {
	switch {
	case e.velocity > 1:
		return 1
	case e.velocity < -1:
		return -1
	default:
		return 0
	}
}

// Predict extrapolates the tuple range the gesture will cover during the
// next horizon, starting from the last observed id. The range is ordered
// (from <= to); a zero-velocity gesture predicts a small symmetric
// neighborhood (the user paused and may go either way).
func (e *Extrapolator) Predict(horizon time.Duration) (from, to int) {
	if e.observed == 0 {
		return 0, 0
	}
	delta := int(e.velocity * horizon.Seconds())
	if delta == 0 {
		// Paused: prepare both directions a little.
		return e.lastID - 64, e.lastID + 64
	}
	if delta > 0 {
		return e.lastID, e.lastID + delta
	}
	return e.lastID + delta, e.lastID
}

// Observed reports how many touches have been observed.
func (e *Extrapolator) Observed() int { return e.observed }

// LastID reports the most recently observed tuple id.
func (e *Extrapolator) LastID() int { return e.lastID }

// InterTouch reports the smoothed time between processed touches.
func (e *Extrapolator) InterTouch() time.Duration { return e.interTouch }

// StepSize reports the expected tuple-id distance between consecutive
// touches (signed). Since span execution, a slide step consumes every
// tuple of that distance, so the prefetcher sizes a contiguous ranged
// warm from it rather than warming isolated predicted positions.
func (e *Extrapolator) StepSize() float64 {
	return e.velocity * e.interTouch.Seconds()
}

// Reset clears gesture history (call between gestures).
func (e *Extrapolator) Reset() {
	v := e.Alpha
	*e = Extrapolator{Alpha: v}
}

// Stats counts prefetcher activity.
type Stats struct {
	// IdleSpent is virtual idle time consumed warming blocks.
	IdleSpent time.Duration
	// Invocations counts idle windows used.
	Invocations int
	// GrowWarms counts data-growth warms: the object's backing data grew
	// under a paused forward gesture and the frontier was extended into
	// the new rows instead of restarting cold.
	GrowWarms int
}

// Prefetcher converts idle windows into warm blocks along the predicted
// path.
type Prefetcher struct {
	// Enabled gates the whole mechanism (the ablation switch).
	Enabled bool
	// Horizon is how far ahead (virtual time) to extrapolate; zero
	// selects 500ms.
	Horizon time.Duration
	// Slack is the relative velocity-estimate error budget: each
	// predicted position k steps ahead is warmed with a halo of
	// ±Slack·|step|·k tuples. Zero selects 0.08.
	Slack float64
	// Extrapolator supplies predictions.
	Extrapolator *Extrapolator

	stats Stats
	// anchor and frontier extend prefetching across consecutive idle
	// windows of one pause: while the gesture stays at anchor, each
	// window continues from where the previous one stopped (frontier is
	// a tuple index) instead of re-warming the already-warm span.
	anchor     int
	frontier   int
	haveAnchor bool
}

// New returns an enabled prefetcher over the given extrapolator.
func New(e *Extrapolator) *Prefetcher {
	return &Prefetcher{Enabled: true, Extrapolator: e}
}

// OnIdle spends the idle window [from, to) warming predicted blocks in
// tracker. The clamp function (optional) bounds predicted tuple ids to
// the valid range.
func (p *Prefetcher) OnIdle(from, to time.Duration, tracker *iomodel.Tracker, clamp func(int) int) {
	if p == nil || !p.Enabled || p.Extrapolator == nil || tracker == nil {
		return
	}
	budget := to - from
	if budget <= 0 {
		return
	}
	horizon := p.Horizon
	if horizon <= 0 {
		horizon = 500 * time.Millisecond
	}
	last := p.Extrapolator.LastID()
	if p.haveAnchor && p.anchor != last {
		p.frontier = last
	}
	if !p.haveAnchor {
		p.frontier = last
	}
	p.anchor, p.haveAnchor = last, true

	step := p.Extrapolator.StepSize()
	interTouch := p.Extrapolator.InterTouch()
	var used time.Duration
	stepMag := step
	if stepMag < 0 {
		stepMag = -stepMag
	}
	if stepMag < 1 || interTouch <= 0 {
		// No reliable stride (gesture barely started): warm the
		// immediate neighborhood symmetrically.
		lo, hi := p.Extrapolator.Predict(horizon)
		if clamp != nil {
			lo, hi = clamp(lo), clamp(hi)
		}
		if hi < lo {
			lo, hi = hi, lo
		}
		used, _ = tracker.PrefetchRange(lo, hi, budget)
		p.account(used)
		return
	}
	// Span-aware warm: since span execution, a slide step consumes every
	// tuple between consecutive touches — not just the sampled positions —
	// so the right thing to warm is the whole span the gesture is
	// extrapolated to cover during the horizon, as one ranged warm from
	// the finger outward in the movement direction. A slack margin
	// proportional to the predicted distance absorbs velocity-estimate
	// error; consecutive idle windows of one pause resume from the
	// frontier the previous window reached.
	slack := p.Slack
	if slack <= 0 {
		slack = 0.08
	}
	steps := float64(horizon) / float64(interTouch)
	if steps < 1 {
		steps = 1
	}
	span := stepMag * steps
	margin := int(slack * span)
	if margin < 64 {
		margin = 64 // always cover a summary window
	}
	if step > 0 {
		start := last
		if p.frontier > start {
			start = p.frontier
		}
		target := last + int(span) + margin
		if clamp != nil {
			start, target = clamp(start), clamp(target)
		}
		// >= not >: a span clamped entirely to the data boundary still
		// warms the boundary block (the gesture is about to park there).
		if target >= start {
			cost, frontier := tracker.PrefetchRange(start, target, budget)
			used = cost
			if frontier > p.frontier {
				p.frontier = frontier
			}
		}
	} else {
		start := last
		if p.frontier < start {
			start = p.frontier
		}
		target := last - int(span) - margin
		if clamp != nil {
			start, target = clamp(start), clamp(target)
		}
		used = p.warmDescending(tracker, start, target, budget)
	}
	p.account(used)
}

// warmDescending warms blocks covering [target, start] back to front —
// the ranged warm for backward gestures, where the tuples nearest the
// finger are at the high end of the span. It returns the cost consumed
// and moves the frontier to the lowest value index reached.
func (p *Prefetcher) warmDescending(tracker *iomodel.Tracker, start, target int, budget time.Duration) time.Duration {
	if start < target {
		return 0
	}
	bv := tracker.Params().BlockValues
	cold := tracker.Params().ColdLatency
	var used time.Duration
	for b := start / bv; b >= target/bv && b >= 0; b-- {
		idx := b * bv
		if budget-used < cold && !tracker.IsWarm(idx) {
			break
		}
		used += tracker.PrefetchBlock(idx, budget-used)
		if idx < p.frontier {
			p.frontier = idx
		}
	}
	return used
}

// OnGrow extends the warm frontier when the object's backing data grows
// under a paused gesture (a live table published new rows and the kernel
// repinned). Limits are in index space of the tracked level: oldLimit is
// the level length the previous warms clamped against, newLimit the
// length after the hop. The warm resumes from the extrapolated frontier
// — which a forward gesture parked at the end of the data had pinned to
// the old boundary — instead of restarting cold, so when the gesture
// resumes into the appended rows they are already warm. The time budget
// is the smoothed inter-touch gap: the window the gesture's own rhythm
// says we have before the next touch lands. Reports whether a warm ran.
func (p *Prefetcher) OnGrow(oldLimit, newLimit int, tracker *iomodel.Tracker) bool {
	if p == nil || !p.Enabled || p.Extrapolator == nil || tracker == nil {
		return false
	}
	if !p.haveAnchor || newLimit <= oldLimit || oldLimit <= 0 {
		return false
	}
	// Only forward gestures meet appended rows; a backward gesture moves
	// away from where growth lands, and a parked one gets the symmetric
	// neighborhood from the normal idle path.
	if p.Extrapolator.Direction() != 1 {
		return false
	}
	budget := p.Extrapolator.InterTouch()
	if budget <= 0 {
		return false
	}
	// Only when the previous warm ran into the old data boundary: if the
	// frontier is still well inside the old range, growth did not block
	// it and the ordinary idle warms keep extending it.
	bv := tracker.Params().BlockValues
	if p.frontier < oldLimit-bv {
		return false
	}
	horizon := p.Horizon
	if horizon <= 0 {
		horizon = 500 * time.Millisecond
	}
	slack := p.Slack
	if slack <= 0 {
		slack = 0.08
	}
	stepMag := p.Extrapolator.StepSize()
	if stepMag < 0 {
		stepMag = -stepMag
	}
	steps := float64(horizon) / float64(budget)
	if steps < 1 {
		steps = 1
	}
	span := stepMag * steps
	margin := int(slack * span)
	if margin < 64 {
		margin = 64
	}
	start := p.frontier
	if start < 0 {
		start = 0
	}
	target := start + int(span) + margin
	if target > newLimit-1 {
		target = newLimit - 1
	}
	if target < start {
		return false
	}
	cost, frontier := tracker.PrefetchRange(start, target, budget)
	if frontier > p.frontier {
		p.frontier = frontier
	}
	p.account(cost)
	if cost > 0 {
		p.stats.GrowWarms++
	}
	return cost > 0
}

func (p *Prefetcher) account(used time.Duration) {
	if used > 0 {
		p.stats.IdleSpent += used
		p.stats.Invocations++
	}
}

// Stats returns a snapshot of prefetch activity.
func (p *Prefetcher) Stats() Stats { return p.stats }
