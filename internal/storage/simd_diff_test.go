//go:build amd64 && !purego

package storage

import (
	"math"
	"math/rand"
	"testing"

	"dbtouch/internal/storage/cpu"
)

// Differential suite: every SIMD wrapper against the scalar reference
// loop it replaces, bit for bit, across fuzzed lengths (odd tails
// included) and the adversarial value matrix (NaN, ±Inf, ±0, ±2^53,
// MinInt64/MaxInt64 wrap). Unlike the dispatch flags, these tests call
// the asm-backed wrappers directly, so they exercise the assembly even
// under -race (where the dispatch is forced scalar — see race_on.go)
// and regardless of setSIMD state. They only need the CPU feature, not
// simdAvailable().

func skipNoAVX2(t *testing.T) {
	t.Helper()
	if !cpu.X86.HasAVX2 {
		t.Skip("host has no AVX2; nothing to differentiate")
	}
}

// diffLengths covers empty, sub-vector, exact-block and ragged-tail
// spans for both the 4- and 8-lane kernels.
var diffLengths = []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 100, 255, 256, 257, 1000}

func fuzzInts(rng *rand.Rand, n int) []int64 {
	edge := []int64{0, 1, -1, math.MaxInt64, math.MinInt64, 1 << 53, -(1 << 53), 100, -100}
	v := make([]int64, n)
	for i := range v {
		switch rng.Intn(4) {
		case 0:
			v[i] = edge[rng.Intn(len(edge))]
		case 1:
			v[i] = int64(rng.Intn(201) - 100)
		default:
			v[i] = rng.Int63() - rng.Int63()
		}
	}
	return v
}

func fuzzFloats(rng *rand.Rand, n int) []float64 {
	edge := []float64{0, math.Copysign(0, -1), 1, -1, math.NaN(), math.Inf(1), math.Inf(-1), 1 << 53, -(1 << 53), 0.5, 100}
	v := make([]float64, n)
	for i := range v {
		if rng.Intn(3) == 0 {
			v[i] = edge[rng.Intn(len(edge))]
		} else {
			v[i] = rng.NormFloat64() * 100
		}
	}
	return v
}

// diffPreds is the intPred edge matrix: interval, one-sided both ways,
// trivially-true, trivially-false, point, and each negated (RangeNe's
// complemented-interval shape).
func diffPreds() []intPred {
	const minI, maxI = int64(math.MinInt64), int64(math.MaxInt64)
	base := []intPred{
		{lo: -50, hi: 50},
		{lo: minI, hi: 0},
		{lo: 0, hi: maxI},
		{lo: minI, hi: maxI},
		{lo: 7, hi: 7},
		{lo: 1, hi: -1},
		{lo: 1 << 53, hi: maxI},
	}
	out := make([]intPred, 0, 2*len(base))
	for _, p := range base {
		out = append(out, p, intPred{lo: p.lo, hi: p.hi, neg: 1})
	}
	return out
}

func TestSIMDSumInt64Differential(t *testing.T) {
	skipNoAVX2(t)
	rng := rand.New(rand.NewSource(1))
	for _, n := range diffLengths {
		for round := 0; round < 8; round++ {
			v := fuzzInts(rng, n)
			if got, want := simdSumInt64(v), sumInt64(v); got != want {
				t.Fatalf("n=%d: simd sum %d, scalar %d", n, got, want)
			}
		}
	}
}

func TestSIMDMinMaxInt64Differential(t *testing.T) {
	skipNoAVX2(t)
	rng := rand.New(rand.NewSource(2))
	for _, n := range diffLengths {
		for round := 0; round < 8; round++ {
			v := fuzzInts(rng, n)
			gmn, gmx := simdMinMaxInt64(v)
			wmn, wmx := int64(math.MaxInt64), int64(math.MinInt64)
			for _, x := range v {
				wmn = min(wmn, x)
				wmx = max(wmx, x)
			}
			if gmn != wmn || gmx != wmx {
				t.Fatalf("n=%d: simd (%d,%d), scalar (%d,%d)", n, gmn, gmx, wmn, wmx)
			}
		}
	}
}

func TestSIMDMinMaxFloat64Differential(t *testing.T) {
	skipNoAVX2(t)
	rng := rand.New(rand.NewSource(3))
	for _, n := range diffLengths {
		for round := 0; round < 8; round++ {
			v := fuzzFloats(rng, n)
			gmn, gmx := simdMinMaxFloat64(v)
			wmn, wmx := math.Inf(1), math.Inf(-1)
			for _, x := range v {
				if x < wmn {
					wmn = x
				}
				if x > wmx {
					wmx = x
				}
			}
			if math.Float64bits(gmn) != math.Float64bits(wmn) || math.Float64bits(gmx) != math.Float64bits(wmx) {
				t.Fatalf("n=%d: simd (%v,%v), scalar (%v,%v)", n, gmn, gmx, wmn, wmx)
			}
		}
	}
}

func TestSIMDFilterSumInt64Differential(t *testing.T) {
	skipNoAVX2(t)
	rng := rand.New(rand.NewSource(4))
	for _, p := range diffPreds() {
		for _, n := range diffLengths {
			v := fuzzInts(rng, n)
			gc, gs := simdFilterSumInt64(v, p)
			wc, ws := 0, int64(0)
			for _, x := range v {
				q := p.test(x)
				wc += q
				ws += x & int64(-q)
			}
			if gc != wc || gs != ws {
				t.Fatalf("pred %+v n=%d: simd (%d,%d), scalar (%d,%d)", p, n, gc, gs, wc, ws)
			}
		}
	}
}

func TestSIMDFilterAggInt64Differential(t *testing.T) {
	skipNoAVX2(t)
	rng := rand.New(rand.NewSource(5))
	for _, p := range diffPreds() {
		for _, n := range diffLengths {
			v := fuzzInts(rng, n)
			got := simdFilterAggInt64(v, p)
			want := newFilterAggInt()
			for _, x := range v {
				want.absorb(x, p.test(x))
			}
			if got != want {
				t.Fatalf("pred %+v n=%d: simd %+v, scalar %+v", p, n, got, want)
			}
		}
	}
}

func TestSIMDCompressInt64Differential(t *testing.T) {
	skipNoAVX2(t)
	rng := rand.New(rand.NewSource(6))
	for _, p := range diffPreds() {
		for _, n := range diffLengths {
			v := fuzzInts(rng, n)
			base := rng.Intn(1000)
			gbuf := make([]int32, n)
			wbuf := make([]int32, n)
			gj := simdCompressInt64(v, p, base, gbuf)
			wj := 0
			for i, x := range v {
				if wj < len(wbuf) {
					wbuf[wj] = int32(base + i)
				}
				wj += p.test(x)
			}
			if gj != wj {
				t.Fatalf("pred %+v n=%d: simd wrote %d, scalar %d", p, n, gj, wj)
			}
			for i := 0; i < gj; i++ {
				if gbuf[i] != wbuf[i] {
					t.Fatalf("pred %+v n=%d: buf[%d] simd %d, scalar %d", p, n, i, gbuf[i], wbuf[i])
				}
			}
		}
	}
}

func TestSIMDCompressFloat64Differential(t *testing.T) {
	skipNoAVX2(t)
	rng := rand.New(rand.NewSource(7))
	operands := []float64{0, 0.5, math.NaN(), math.Inf(1), math.Inf(-1), 1 << 53, -100}
	for _, b := range operands {
		for wants := 0; wants < 8; wants++ {
			wLt, wGt, wEq := wants&1, wants>>1&1, wants>>2&1
			for _, n := range diffLengths {
				v := fuzzFloats(rng, n)
				base := rng.Intn(1000)
				gbuf := make([]int32, n)
				wbuf := make([]int32, n)
				gj := simdCompressFloat64(v, b, wLt, wGt, wEq, base, gbuf)
				wj := 0
				for i, x := range v {
					if wj < len(wbuf) {
						wbuf[wj] = int32(base + i)
					}
					wj += passFloat(x, b, wLt, wGt, wEq)
				}
				if gj != wj {
					t.Fatalf("b=%v wants=%03b n=%d: simd wrote %d, scalar %d", b, wants, n, gj, wj)
				}
				for i := 0; i < gj; i++ {
					if gbuf[i] != wbuf[i] {
						t.Fatalf("b=%v wants=%03b n=%d: buf[%d] simd %d, scalar %d", b, wants, n, i, gbuf[i], wbuf[i])
					}
				}
			}
		}
	}
}

// TestSIMDDispatchFlagsConsistent pins the dispatch contract: under
// -race every flag must be off (the detector cannot see loads inside
// assembly), and setSIMD must round-trip the flags.
func TestSIMDDispatchFlagsConsistent(t *testing.T) {
	if raceEnabled && (simdSum || simdMinMax || simdFilterSum || simdFilterAgg || simdCompress) {
		t.Fatal("SIMD dispatch flags must be off under -race")
	}
	was := simdSum
	restore := setSIMD(false)
	if simdSum || simdFilterSum {
		t.Fatal("setSIMD(false) left a dispatch flag on")
	}
	restore()
	if simdSum != was {
		t.Fatal("setSIMD restore did not round-trip")
	}
}
