package session

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/operator"
	"dbtouch/internal/storage"
)

// BenchmarkAppendWhileTouching measures ingestion throughput under
// exploration pressure: the timed loop appends 256-row batches while a
// started session continuously slides over the table on the scheduler —
// every batch forces a snapshot publication, and every slide batch a
// repin plus incremental statistics extension. This is the live-
// ingestion cost the roofline doc cites; bench.sh records it in
// BENCH_kernels.json.
func BenchmarkAppendWhileTouching(b *testing.B) {
	const batchRows = 256
	m := NewManager(core.DefaultConfig())
	vals := make([]int64, 20_000)
	for i := range vals {
		vals[i] = int64(i % 1000)
	}
	tb, err := storage.NewTable("events", storage.NewIntColumn("v", vals))
	if err != nil {
		b.Fatal(err)
	}
	if err := tb.SetRetention(storage.Retention{MaxRows: 100_000}); err != nil {
		b.Fatal(err)
	}
	m.Catalog().RegisterLive(tb)
	if err := m.SetWorkers(2); err != nil {
		b.Fatal(err)
	}
	s, err := m.Create("toucher")
	if err != nil {
		b.Fatal(err)
	}
	obj, err := s.CreateColumnObject("events", "v", equivFrame)
	if err != nil {
		b.Fatal(err)
	}
	obj.SetActions(core.Actions{Mode: core.ModeAggregate, Agg: operator.Sum})
	s.Start()

	stop := make(chan struct{})
	touchDone := make(chan struct{})
	go func() {
		defer close(touchDone)
		var cur time.Duration
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := m.Dispatch("toucher", livePinSlide(cur)); err != nil {
				if errors.Is(err, ErrOverloaded) {
					time.Sleep(100 * time.Microsecond)
					continue
				}
				return
			}
			cur += 3 * time.Second
		}
	}()

	rows := make([][]storage.Value, batchRows)
	b.ResetTimer()
	b.SetBytes(batchRows * 8)
	next := len(vals)
	for i := 0; i < b.N; i++ {
		for j := range rows {
			rows[j] = []storage.Value{storage.IntValue(int64((next + j) % 1000))}
		}
		next += batchRows
		if _, err := m.Append("events", rows); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-touchDone
	s.Drain()
	m.Close()
	if tb.Epoch() < uint64(b.N) {
		b.Fatal(fmt.Sprintf("epoch %d after %d batches", tb.Epoch(), b.N))
	}
}
