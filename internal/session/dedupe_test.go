package session

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"dbtouch/internal/gesture"
	"dbtouch/internal/protocol"
)

// The exactly-once cache is what makes lost responses safe to retry
// through the gateway: a mutating request re-sent with the ReqID of the
// session's most recent one must answer from cache, byte-identically,
// without executing again.

func TestReqIDRetryReturnsCachedResponse(t *testing.T) {
	m := handleManager(t)
	defer m.Close()

	mustOK(t, m, protocol.Request{Op: protocol.OpOpen, Session: "d"})
	mustOK(t, m, protocol.Request{
		Op: protocol.OpCreate, Session: "d", Object: "col",
		Create: &protocol.CreateSpec{Table: "t", Column: "v", X: 2, Y: 2, W: 2, H: 10},
	})

	tap := gesture.NewTap(0, 0.25)
	first := mustOK(t, m, protocol.Request{
		Op: protocol.OpPerform, Session: "d", Object: "col", Gesture: &tap, ReqID: "r1",
	})

	// The retry carries a *different* gesture under the same ReqID: if
	// the cache misses, the slide executes and the response shape gives
	// it away. A correct hit returns the tap's answer untouched.
	slide := gesture.NewSlide(0, 0, 1, time.Second)
	retry := mustOK(t, m, protocol.Request{
		Op: protocol.OpPerform, Session: "d", Object: "col", Gesture: &slide, ReqID: "r1",
	})
	wantB, _ := json.Marshal(first)
	gotB, _ := json.Marshal(retry)
	if !bytes.Equal(gotB, wantB) {
		t.Fatalf("retry with cached ReqID diverged:\n first: %s\n retry: %s", wantB, gotB)
	}
	if len(retry.Results) != 1 {
		t.Fatalf("retry returned %d frames, want the tap's 1", len(retry.Results))
	}
}

func TestReqIDCacheHoldsOnlyLastRequest(t *testing.T) {
	m := handleManager(t)
	defer m.Close()

	mustOK(t, m, protocol.Request{Op: protocol.OpOpen, Session: "d"})
	mustOK(t, m, protocol.Request{
		Op: protocol.OpCreate, Session: "d", Object: "col",
		Create: &protocol.CreateSpec{Table: "t", Column: "v", X: 2, Y: 2, W: 2, H: 10},
		ReqID:  "r1",
	})
	tap := gesture.NewTap(0, 0.5)
	mustOK(t, m, protocol.Request{
		Op: protocol.OpPerform, Session: "d", Object: "col", Gesture: &tap, ReqID: "r2",
	})

	// r1 is no longer the last request, so re-sending it must execute,
	// not answer from cache. Wire clients are request-at-a-time, so only
	// the most recent request can ever be a legitimate retry; a stale
	// ReqID reaching here is a new request that happens to reuse an id.
	stale := m.HandleRequest(protocol.Request{
		Op: protocol.OpPerform, Session: "d", Object: "col", Gesture: &tap,
		ReqID: "r1", V: protocol.Version,
	})
	if !stale.OK {
		t.Fatalf("stale-ReqID request failed: %s", stale.Error)
	}
	if len(stale.Results) == 0 {
		t.Fatal("stale ReqID should have executed the perform, got no frames")
	}
}

func TestReqIDDedupeSkipsNonMutatingOps(t *testing.T) {
	m := handleManager(t)
	defer m.Close()

	mustOK(t, m, protocol.Request{Op: protocol.OpOpen, Session: "d", ReqID: "r1"})
	// OpStats is not session-scoped and never deduped: the same ReqID
	// must not replay the open's cached response.
	resp := m.HandleRequest(protocol.Request{Op: protocol.OpStats, ReqID: "r1", V: protocol.Version})
	if !resp.OK || resp.Stats == nil {
		t.Fatalf("stats with reused ReqID = %+v, want a real stats answer", resp)
	}
}
