package core

import (
	"testing"
	"time"

	"dbtouch/internal/gesture"
	"dbtouch/internal/operator"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
)

// testKernel builds a kernel over an identity int column of n rows with a
// 2x10cm object at (2,2).
func testKernel(t *testing.T, n int, cfg Config) (*Kernel, *Object) {
	t.Helper()
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	k := NewKernel(cfg)
	m, err := storage.NewMatrix("t", storage.NewIntColumn("v", vals))
	if err != nil {
		t.Fatal(err)
	}
	obj, err := k.CreateColumnObject(m, 0, touchos.NewRect(2, 2, 2, 10))
	if err != nil {
		t.Fatal(err)
	}
	return k, obj
}

func slideEvents(obj *Object, dur time.Duration, start time.Duration) []touchos.TouchEvent {
	f := obj.View().Frame()
	synth := gesture.Synth{}
	return synth.Slide(
		touchos.Point{X: f.Origin.X + f.Size.W/2, Y: f.Origin.Y + 0.05},
		touchos.Point{X: f.Origin.X + f.Size.W/2, Y: f.Origin.Y + f.Size.H - 0.05},
		start, dur,
	)
}

func countResults(results []Result, kind ResultKind) int {
	n := 0
	for _, r := range results {
		if r.Kind == kind {
			n++
		}
	}
	return n
}

func TestSlideProducesSummaries(t *testing.T) {
	k, obj := testKernel(t, 100000, DefaultConfig())
	results := k.Apply(slideEvents(obj, 2*time.Second, 0))
	got := countResults(results, SummaryValue)
	if got < 25 || got > 40 {
		t.Fatalf("2s slide produced %d summaries, want ≈31", got)
	}
	// Results carry sane metadata.
	for _, r := range results {
		if r.Kind != SummaryValue {
			continue
		}
		if r.TupleID < 0 || r.TupleID >= 100000 {
			t.Fatalf("result tuple out of range: %d", r.TupleID)
		}
		if r.FadeAt != r.Time+FadeAfter {
			t.Fatal("fade deadline wrong")
		}
		if r.WindowHi <= r.WindowLo {
			t.Fatalf("window [%d,%d) empty", r.WindowLo, r.WindowHi)
		}
	}
}

func TestSlowerSlideMoreEntries(t *testing.T) {
	fast := func() int {
		k, obj := testKernel(t, 100000, DefaultConfig())
		return countResults(k.Apply(slideEvents(obj, 500*time.Millisecond, 0)), SummaryValue)
	}()
	slow := func() int {
		k, obj := testKernel(t, 100000, DefaultConfig())
		return countResults(k.Apply(slideEvents(obj, 4*time.Second, 0)), SummaryValue)
	}()
	if slow < fast*5 {
		t.Fatalf("slow=%d fast=%d; slower slides must process more entries", slow, fast)
	}
}

func TestSummaryIDsMonotoneDuringDownSlide(t *testing.T) {
	k, obj := testKernel(t, 100000, DefaultConfig())
	results := k.Apply(slideEvents(obj, 2*time.Second, 0))
	prev := -1
	for _, r := range results {
		if r.Kind != SummaryValue {
			continue
		}
		if r.TupleID < prev {
			t.Fatalf("tuple ids not monotone: %d after %d", r.TupleID, prev)
		}
		prev = r.TupleID
	}
}

func TestScanMode(t *testing.T) {
	k, obj := testKernel(t, 1000, DefaultConfig())
	a := obj.Actions()
	a.Mode = ModeScan
	obj.SetActions(a)
	results := k.Apply(slideEvents(obj, time.Second, 0))
	scans := countResults(results, ScanValue)
	if scans < 10 {
		t.Fatalf("scans = %d", scans)
	}
	for _, r := range results {
		if r.Kind == ScanValue && r.Value.I != int64(r.TupleID) {
			t.Fatalf("scan value %v at tuple %d (identity data)", r.Value, r.TupleID)
		}
	}
}

func TestAggregateModeRuns(t *testing.T) {
	k, obj := testKernel(t, 1000, DefaultConfig())
	a := obj.Actions()
	a.Mode = ModeAggregate
	a.Agg = operator.Count
	obj.SetActions(a)
	results := k.Apply(slideEvents(obj, time.Second, 0))
	var last Result
	n := 0
	prev := 0.0
	for _, r := range results {
		if r.Kind == AggregateValue {
			if r.Agg < prev {
				t.Fatalf("running count decreased: %v after %v", r.Agg, prev)
			}
			if r.Agg != float64(r.N) {
				t.Fatalf("count %v != N %d", r.Agg, r.N)
			}
			prev = r.Agg
			n++
			last = r
		}
	}
	if n == 0 {
		t.Fatal("no aggregate results")
	}
	// Span execution absorbs every entry the slide swept over, not only
	// the sampled touch positions, so the final count covers at least one
	// entry per emitted touch and typically many more.
	if last.N < int64(n) {
		t.Fatalf("aggregate absorbed %d entries over %d touches", last.N, n)
	}
}

func TestTapRevealsValue(t *testing.T) {
	k, obj := testKernel(t, 1000, DefaultConfig())
	synth := gesture.Synth{}
	f := obj.View().Frame()
	results := k.Apply(synth.Tap(touchos.Point{X: 3, Y: f.Origin.Y + f.Size.H/2}, 0))
	if countResults(results, ScanValue) != 1 {
		t.Fatalf("tap results = %v", results)
	}
	r := results[0]
	if r.TupleID < 400 || r.TupleID > 600 {
		t.Fatalf("mid tap mapped to %d, want ≈500", r.TupleID)
	}
}

func TestTableObjectTapPeeksTuple(t *testing.T) {
	k := NewKernel(DefaultConfig())
	m, err := storage.NewMatrix("t",
		storage.NewIntColumn("a", []int64{1, 2, 3, 4}),
		storage.NewStringColumn("b", []string{"w", "x", "y", "z"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := k.CreateTableObject(m, touchos.NewRect(2, 2, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	_ = obj
	synth := gesture.Synth{}
	results := k.Apply(synth.Tap(touchos.Point{X: 4, Y: 6}, 0))
	if countResults(results, TuplePeek) != 1 {
		t.Fatalf("results = %v", results)
	}
	peek := results[0]
	if len(peek.Tuple) != 2 {
		t.Fatalf("tuple = %v", peek.Tuple)
	}
}

func TestTableSlideScan(t *testing.T) {
	k := NewKernel(DefaultConfig())
	m, _ := storage.NewMatrix("t",
		storage.NewIntColumn("a", mkInts(1000, 0)),
		storage.NewIntColumn("b", mkInts(1000, 1000)),
	)
	obj, err := k.CreateTableObject(m, touchos.NewRect(2, 2, 4, 10))
	if err != nil {
		t.Fatal(err)
	}
	a := obj.Actions()
	a.Mode = ModeScan
	obj.SetActions(a)
	// Vertical slide down the right half: attribute b.
	synth := gesture.Synth{}
	events := synth.Slide(touchos.Point{X: 5, Y: 2.05}, touchos.Point{X: 5, Y: 11.95}, 0, time.Second)
	results := k.Apply(events)
	if countResults(results, ScanValue) == 0 {
		t.Fatal("no table scans")
	}
	for _, r := range results {
		if r.Kind == ScanValue && r.Col != 1 {
			t.Fatalf("slide on right half touched col %d", r.Col)
		}
	}
}

func mkInts(n int, offset int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = offset + int64(i)
	}
	return out
}

func TestZoomChangesAddressableDetail(t *testing.T) {
	cfg := DefaultConfig()
	k, obj := testKernel(t, 100000, cfg)
	synth := gesture.Synth{}
	f := obj.View().Frame()
	center := f.Center()
	k.Apply(synth.Pinch(center, 2, 4, 0, 300*time.Millisecond))
	nf := obj.View().Frame()
	if nf.Size.H <= f.Size.H {
		t.Fatalf("zoom-in did not grow the object: %v -> %v", f.Size, nf.Size)
	}
	if k.Counters().Get("gesture.zoom_in") != 1 {
		t.Fatal("zoom counter missing")
	}
	// Zoom-out shrinks back.
	k.Apply(synth.Pinch(nf.Center(), 4, 2, k.Clock().Now()+time.Millisecond, 300*time.Millisecond))
	if got := obj.View().Frame().Size.H; got >= nf.Size.H {
		t.Fatalf("zoom-out did not shrink: %v", got)
	}
}

func TestZoomClampsToScreen(t *testing.T) {
	cfg := DefaultConfig() // 15x20 screen
	k, obj := testKernel(t, 1000, cfg)
	synth := gesture.Synth{}
	for i := 0; i < 6; i++ {
		f := obj.View().Frame()
		k.Apply(synth.Pinch(f.Center(), 1, 4, k.Clock().Now()+time.Millisecond, 200*time.Millisecond))
	}
	f := obj.View().Frame()
	if f.Size.W > cfg.ScreenW || f.Size.H > cfg.ScreenH {
		t.Fatalf("object escaped the screen: %v", f)
	}
	if f.Origin.X < 0 || f.Origin.Y < 0 {
		t.Fatalf("object origin off screen: %v", f.Origin)
	}
}

func TestRotateColumnObjectKeepsMapping(t *testing.T) {
	k, obj := testKernel(t, 1000, DefaultConfig())
	synth := gesture.Synth{}
	f := obj.View().Frame()
	k.Apply(synth.Rotate(f.Center(), 0.9, 1.65, 0, 400*time.Millisecond))
	if obj.View().Rotation() != 1 {
		t.Fatalf("rotation = %d, want 1", obj.View().Rotation())
	}
	// A single-column object starts no layout conversion.
	if converting, _ := obj.Converting(); converting {
		t.Fatal("single column must not convert layout")
	}
	// A horizontal slide along the rotated height axis still maps rows.
	events := synth.Slide(
		touchos.Point{X: f.Origin.X + 0.05, Y: f.Origin.Y + 1},
		touchos.Point{X: f.Origin.X + f.Size.W - 0.05, Y: f.Origin.Y + 1},
		k.Clock().Now()+time.Millisecond, time.Second)
	results := k.Apply(events)
	if countResults(results, SummaryValue) == 0 {
		t.Fatal("rotated object unusable")
	}
}

func TestRotateTableStartsConversion(t *testing.T) {
	k := NewKernel(DefaultConfig())
	m, _ := storage.NewMatrix("t",
		storage.NewIntColumn("a", mkInts(50000, 0)),
		storage.NewIntColumn("b", mkInts(50000, 7)),
	)
	obj, err := k.CreateTableObject(m, touchos.NewRect(2, 2, 6, 10))
	if err != nil {
		t.Fatal(err)
	}
	synth := gesture.Synth{}
	k.Apply(synth.Rotate(obj.View().Frame().Center(), 2, 1.65, 0, 400*time.Millisecond))
	converting, progress := obj.Converting()
	if !converting {
		t.Fatal("rotate should start a layout conversion")
	}
	if progress >= 1 {
		t.Fatal("conversion should be incremental")
	}
	startLayout := obj.Matrix().Layout()
	if startLayout != storage.ColumnMajor {
		t.Fatal("conversion target should not be swapped in yet")
	}
	// Idle time finishes the conversion and swaps the matrix.
	now := k.Clock().Now()
	k.RunIdle(now, now+time.Minute)
	if converting, _ := obj.Converting(); converting {
		t.Fatal("conversion should be done after a minute of idle")
	}
	if obj.Matrix().Layout() != storage.RowMajor {
		t.Fatalf("layout after rotate = %v, want row-major", obj.Matrix().Layout())
	}
	if obj.Matrix().NumRows() != 50000 {
		t.Fatal("conversion lost rows")
	}
}

func TestFiltersGateResults(t *testing.T) {
	k := NewKernel(DefaultConfig())
	n := 10000
	v := mkInts(n, 0)
	flag := make([]int64, n)
	for i := range flag {
		// Bands of 2000 tuples alternate pass/fail — wider than the
		// ~300-tuple spans between consecutive touches, so some spans
		// fall entirely inside a fail band and get filtered whole.
		flag[i] = int64((i / 2000) % 2)
	}
	m, _ := storage.NewMatrix("t", storage.NewIntColumn("v", v), storage.NewIntColumn("flag", flag))
	obj, err := k.CreateColumnObject(m, 0, touchos.NewRect(2, 2, 2, 10))
	if err != nil {
		t.Fatal(err)
	}
	a := obj.Actions()
	a.Mode = ModeScan
	a.Filters = []operator.Predicate{{Col: 1, Op: operator.Eq, Operand: storage.IntValue(1)}}
	obj.SetActions(a)
	results := k.Apply(slideEvents(obj, 2*time.Second, 0))
	for _, r := range results {
		if r.Kind == ScanValue && (r.TupleID/2000)%2 == 0 {
			t.Fatalf("filtered slide returned non-matching tuple %d", r.TupleID)
		}
	}
	if k.Counters().Get("touch.filtered") == 0 {
		t.Fatal("no touches filtered")
	}
}

func TestJoinGestures(t *testing.T) {
	k := NewKernel(DefaultConfig())
	left, _ := storage.NewMatrix("l", storage.NewIntColumn("x", []int64{1, 2, 3, 4, 5, 6, 7, 8}))
	right, _ := storage.NewMatrix("r", storage.NewIntColumn("y", []int64{8, 7, 6, 5, 4, 3, 2, 1}))
	lo, err := k.CreateColumnObject(left, 0, touchos.NewRect(2, 2, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	ro, err := k.CreateColumnObject(right, 0, touchos.NewRect(6, 2, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	a := lo.Actions()
	a.Join = &JoinSpec{OtherObject: ro.ID(), Side: JoinLeft}
	lo.SetActions(a)

	// Slide both objects; matches must stream out.
	r1 := k.Apply(slideEvents(lo, time.Second, 0))
	r2 := k.Apply(slideEvents(ro, time.Second, k.Clock().Now()+time.Millisecond))
	matches := countResults(r1, JoinMatches) + countResults(r2, JoinMatches)
	if matches == 0 {
		t.Fatal("join produced no matches")
	}
	for _, r := range append(r1, r2...) {
		if r.Kind != JoinMatches {
			continue
		}
		for _, m := range r.Matches {
			lv, _ := left.At(m.LeftID, 0)
			rv, _ := right.At(m.RightID, 0)
			if !lv.Equal(rv) {
				t.Fatalf("bogus match %v: %v != %v", m, lv, rv)
			}
		}
	}
}

func TestGroupByGesture(t *testing.T) {
	k := NewKernel(DefaultConfig())
	n := 1000
	keys := make([]string, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = string(rune('a' + i%3))
		vals[i] = int64(i)
	}
	m, _ := storage.NewMatrix("t",
		storage.NewIntColumn("v", vals),
		storage.NewStringColumn("k", keys),
	)
	obj, err := k.CreateColumnObject(m, 0, touchos.NewRect(2, 2, 2, 10))
	if err != nil {
		t.Fatal(err)
	}
	a := obj.Actions()
	a.Group = &GroupSpec{KeyCol: 1, ValCol: 0, Agg: operator.Count}
	obj.SetActions(a)
	results := k.Apply(slideEvents(obj, time.Second, 0))
	groups := map[string]bool{}
	for _, r := range results {
		if r.Kind == GroupValue {
			groups[r.GroupKey] = true
		}
	}
	if len(groups) != 3 {
		t.Fatalf("groups touched = %v, want 3", groups)
	}
}

func TestResponseBoundDegradesLevel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResponseBound = 200 * time.Microsecond
	cfg.IO.ColdLatency = time.Millisecond // single cold block busts the bound
	k, obj := testKernel(t, 1_000_000, cfg)
	a := obj.Actions()
	a.SummaryK = 5000 // huge windows at base level
	obj.SetActions(a)
	results := k.Apply(slideEvents(obj, 2*time.Second, 0))
	for _, r := range results {
		if r.Kind == SummaryValue && r.Level == 0 {
			t.Fatal("response bound should escalate off base level")
		}
	}
	_ = results
}

func TestDuplicateTouchesSuppressed(t *testing.T) {
	k, obj := testKernel(t, 20, DefaultConfig())
	// Tiny data: many touch positions map to the same tuple.
	results := k.Apply(slideEvents(obj, 4*time.Second, 0))
	entries := countResults(results, SummaryValue)
	if entries > 20 {
		t.Fatalf("entries %d exceed tuple count 20", entries)
	}
	if k.Counters().Get("touch.duplicates") == 0 {
		t.Fatal("expected duplicate suppression on tiny data")
	}
}

func TestTouchOutsideObjectsCounted(t *testing.T) {
	k, _ := testKernel(t, 100, DefaultConfig())
	synth := gesture.Synth{}
	k.Apply(synth.Tap(touchos.Point{X: 14, Y: 19}, 0))
	if k.Counters().Get("touch.misses") == 0 {
		t.Fatal("off-object touch should count as a miss")
	}
}

func TestValueOrderSlide(t *testing.T) {
	cfg := DefaultConfig()
	k := NewKernel(cfg)
	// Shuffled data; value order must come out sorted.
	vals := []int64{50, 10, 40, 20, 30, 60, 90, 70, 80, 0}
	big := make([]int64, 0, 1000)
	for i := 0; i < 100; i++ {
		for _, v := range vals {
			big = append(big, v+int64(i)*100)
		}
	}
	m, _ := storage.NewMatrix("t", storage.NewIntColumn("v", big))
	obj, err := k.CreateColumnObject(m, 0, touchos.NewRect(2, 2, 2, 10))
	if err != nil {
		t.Fatal(err)
	}
	a := obj.Actions()
	a.Mode = ModeScan
	a.ValueOrder = true
	obj.SetActions(a)
	results := k.Apply(slideEvents(obj, 2*time.Second, 0))
	prev := -1.0
	n := 0
	for _, r := range results {
		if r.Kind != ScanValue {
			continue
		}
		v := r.Value.AsFloat()
		if v < prev {
			t.Fatalf("value-order slide not sorted: %v after %v", v, prev)
		}
		prev = v
		n++
	}
	if n < 10 {
		t.Fatalf("value-order scans = %d", n)
	}
}

func TestProjectColumnOut(t *testing.T) {
	k := NewKernel(DefaultConfig())
	m, _ := storage.NewMatrix("t",
		storage.NewIntColumn("a", mkInts(100, 0)),
		storage.NewIntColumn("b", mkInts(100, 1000)),
	)
	tableObj, err := k.CreateTableObject(m, touchos.NewRect(2, 2, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	colObj, err := k.ProjectColumnOut(tableObj, 1, touchos.NewRect(8, 2, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !colObj.IsColumn() || colObj.Rows() != 100 {
		t.Fatal("projected object malformed")
	}
	results := k.Apply(slideEvents(colObj, time.Second, k.Clock().Now()+time.Millisecond))
	if countResults(results, SummaryValue) == 0 {
		t.Fatal("projected object unusable")
	}
}

func TestKernelObjectRegistry(t *testing.T) {
	k, obj := testKernel(t, 100, DefaultConfig())
	got, err := k.Object(obj.ID())
	if err != nil || got != obj {
		t.Fatalf("Object lookup = %v, %v", got, err)
	}
	if _, err := k.Object(999); err == nil {
		t.Fatal("missing object should error")
	}
	if len(k.Objects()) != 1 {
		t.Fatal("Objects() wrong")
	}
	k.RemoveObject(obj.ID())
	if len(k.Objects()) != 0 {
		t.Fatal("RemoveObject failed")
	}
	// Touches after removal are misses, not crashes.
	synth := gesture.Synth{}
	k.Apply(synth.Tap(touchos.Point{X: 3, Y: 7}, k.Clock().Now()))
}

func TestOnResultCallback(t *testing.T) {
	k, obj := testKernel(t, 10000, DefaultConfig())
	var live int
	k.OnResult(func(Result) { live++ })
	results := k.Apply(slideEvents(obj, time.Second, 0))
	if live != len(results) {
		t.Fatalf("callback saw %d, Apply returned %d", live, len(results))
	}
}

func TestCreateColumnObjectErrors(t *testing.T) {
	k := NewKernel(DefaultConfig())
	rm := storage.NewRowMajorMatrix("r", []storage.ColumnMeta{{Name: "x", Type: storage.Int64}})
	_ = rm.AppendRow([]storage.Value{storage.IntValue(1)})
	if _, err := k.CreateColumnObject(rm, 0, touchos.NewRect(0, 0, 1, 1)); err == nil {
		t.Fatal("row-major column object should error")
	}
	if _, err := k.CreateTableObject(storage.NewRowMajorMatrix("e", []storage.ColumnMeta{{Name: "x", Type: storage.Int64}}), touchos.NewRect(0, 0, 1, 1)); err == nil {
		t.Fatal("empty table object should error")
	}
}

func TestAdaptiveOptimizerUnit(t *testing.T) {
	m, _ := storage.NewMatrix("t",
		storage.NewIntColumn("a", mkInts(100, 0)),
		storage.NewIntColumn("b", mkInts(100, 0)),
	)
	preds := []operator.Predicate{
		{Col: 0, Op: operator.Lt, Operand: storage.IntValue(5)},  // 5% pass
		{Col: 1, Op: operator.Lt, Operand: storage.IntValue(95)}, // 95% pass
	}
	opt := NewAdaptiveOptimizer(preds, 16, true)
	for row := 0; row < 100; row++ {
		if _, err := opt.Eval(m, row, nil); err != nil {
			t.Fatal(err)
		}
	}
	order := opt.Order()
	if order[0] != 0 {
		t.Fatalf("adaptive order = %v; selective predicate should go first", order)
	}
	if opt.Selectivity(0) > 0.2 || opt.Selectivity(1) < 0.8 {
		t.Fatalf("selectivities = %v, %v", opt.Selectivity(0), opt.Selectivity(1))
	}
	// Disabled optimizer keeps the declared order.
	fixed := NewAdaptiveOptimizer([]operator.Predicate{preds[1], preds[0]}, 16, false)
	for row := 0; row < 100; row++ {
		if _, err := fixed.Eval(m, row, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := fixed.Order(); got[0] != 0 {
		t.Fatalf("fixed order changed: %v", got)
	}
	if fixed.Reorders() != 0 {
		t.Fatal("disabled optimizer reordered")
	}
}

// TestValueOrderFilteredGatesOnTouchedTuple: value-order slides interpret
// the touch as a rank, so the WHERE restriction gates on the touched
// tuple itself — a touch whose tuple fails the filter emits nothing even
// when the covered span contains qualifying tuples (the boundary-crossing
// step would otherwise reveal a non-matching tuple).
func TestValueOrderFilteredGatesOnTouchedTuple(t *testing.T) {
	n := 10000
	k, obj := testKernel(t, n, DefaultConfig())
	a := obj.Actions()
	a.Mode = ModeScan
	a.ValueOrder = true
	a.Filters = []operator.Predicate{{Col: 0, Op: operator.Lt, Operand: storage.IntValue(int64(n / 2))}}
	obj.SetActions(a)
	results := k.Apply(slideEvents(obj, 1500*time.Millisecond, 0))
	if countResults(results, ScanValue) == 0 {
		t.Fatal("qualifying half emitted nothing")
	}
	// Identity column at base level: the emitted tuple is the touched
	// rank, so every revealed tuple must satisfy the filter.
	for _, r := range results {
		if r.Kind == ScanValue && r.TupleID >= n/2 {
			t.Fatalf("revealed non-qualifying tuple %d", r.TupleID)
		}
	}
}
