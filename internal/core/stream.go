package core

import "sync"

// DefaultStreamBuffer is the ResultStream capacity when Subscribe is
// given a non-positive buffer size.
const DefaultStreamBuffer = 1024

// ResultStream is a bounded cursor over a kernel's emitted results — the
// subscription half of the streaming API. The kernel pushes every result
// it emits (before fade-pruning, so a stream observes the complete
// stream, unlike the Results snapshot); consumers advance the cursor with
// Next or TryNext from any goroutine. The buffer is a fixed ring: when a
// consumer falls more than the buffer behind, the oldest undelivered
// results are dropped and counted (Dropped), never blocking the kernel —
// backpressure must not stall a touch pipeline shared with other
// subscribers.
type ResultStream struct {
	mu      sync.Mutex
	cond    *sync.Cond
	buf     []Result // ring storage
	head    int      // index of the oldest buffered result
	count   int      // buffered results
	dropped int64
	closed  bool
}

func newResultStream(buffer int) *ResultStream {
	if buffer <= 0 {
		buffer = DefaultStreamBuffer
	}
	s := &ResultStream{buf: make([]Result, buffer)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// push appends a result for the kernel, dropping the oldest buffered
// result when the ring is full. It reports false once the stream is
// closed so the kernel can unsubscribe it.
func (s *ResultStream) push(r Result) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if s.count == len(s.buf) {
		s.buf[s.head] = Result{}
		s.head = (s.head + 1) % len(s.buf)
		s.count--
		s.dropped++
	}
	s.buf[(s.head+s.count)%len(s.buf)] = r
	s.count++
	s.cond.Signal()
	return true
}

// Next blocks until a result is available and returns it. It returns
// ok=false only when the stream is closed and fully drained, making
// `for r, ok := stream.Next(); ok; r, ok = stream.Next()` a complete
// consumption loop.
func (s *ResultStream) Next() (Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.count == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.count == 0 {
		return Result{}, false
	}
	return s.popLocked(), true
}

// TryNext returns the next buffered result without blocking; ok=false
// means the buffer is currently empty (the stream may still be open).
func (s *ResultStream) TryNext() (Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return Result{}, false
	}
	return s.popLocked(), true
}

func (s *ResultStream) popLocked() Result {
	r := s.buf[s.head]
	s.buf[s.head] = Result{}
	s.head = (s.head + 1) % len(s.buf)
	s.count--
	return r
}

// Close ends the subscription: blocked Next calls return after draining,
// and the kernel stops delivering into the stream at its next emission.
// Close is idempotent and safe from any goroutine.
func (s *ResultStream) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.cond.Broadcast()
}

// Closed reports whether Close was called.
func (s *ResultStream) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Len reports how many results are currently buffered.
func (s *ResultStream) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Dropped reports how many results were discarded because the consumer
// fell more than the buffer size behind the kernel.
func (s *ResultStream) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Subscribe registers a bounded result stream fed by every subsequent
// emission. buffer sizes the ring (non-positive selects
// DefaultStreamBuffer). Subscribe must be called on the goroutine that
// owns the kernel (sessions serialize it against their worker); the
// returned stream itself is safe to consume from any goroutine. Closing
// the stream unsubscribes it at the kernel's next emission.
func (k *Kernel) Subscribe(buffer int) *ResultStream {
	s := newResultStream(buffer)
	k.subs = append(k.subs, s)
	return s
}

// CloseSubscriptions closes every subscribed stream — the end-of-stream
// signal consumers see when the session that owns this kernel is closed
// or evicted (a blocked Next returns after draining). Like Subscribe, it
// must run on the goroutine that owns the kernel.
func (k *Kernel) CloseSubscriptions() {
	for _, s := range k.subs {
		s.Close()
	}
	k.subs = nil
}
