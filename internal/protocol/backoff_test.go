package protocol

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBackoffDelayCappedExponential(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Rand: func() float64 { return 0.999999 }}
	// Jitter pinned at ~1.0: Delay approaches the ceiling itself.
	wantCeilings := []time.Duration{
		10 * time.Millisecond, // attempt 0: base
		20 * time.Millisecond, // attempt 1: base<<1
		40 * time.Millisecond,
		80 * time.Millisecond, // hits cap
		80 * time.Millisecond, // stays capped
	}
	for attempt, ceiling := range wantCeilings {
		d := b.Delay(attempt, 0)
		if d > ceiling || d < ceiling-time.Millisecond {
			t.Fatalf("attempt %d: delay %v, want ~%v", attempt, d, ceiling)
		}
	}
}

func TestBackoffDelayFullJitter(t *testing.T) {
	// Full jitter means delay = r * ceiling for r in [0,1): r=0 gives a
	// zero delay — clients knocked back together must be able to spread
	// across the whole window, including its bottom.
	b := Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Rand: func() float64 { return 0 }}
	if d := b.Delay(0, 0); d != 0 {
		t.Fatalf("zero jitter: delay %v, want 0", d)
	}
	b.Rand = func() float64 { return 0.5 }
	if d := b.Delay(0, 0); d != 50*time.Millisecond {
		t.Fatalf("half jitter: delay %v, want 50ms", d)
	}
}

func TestBackoffDelayHonorsRetryAfterFloor(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: 20 * time.Millisecond, Rand: func() float64 { return 0 }}
	// The server's hint is a floor, never shaved by jitter: an
	// overloaded server knows its drain rate better than our curve.
	if d := b.Delay(0, 3*time.Second); d != 3*time.Second {
		t.Fatalf("delay %v, want the 3s Retry-After floor", d)
	}
	// A hint below the jittered delay changes nothing.
	b.Rand = func() float64 { return 0.999999 }
	if d := b.Delay(4, time.Millisecond); d < 19*time.Millisecond {
		t.Fatalf("delay %v, want ~cap despite tiny hint", d)
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	if got := b.MaxAttempts(); got != DefaultBackoffAttempts {
		t.Fatalf("MaxAttempts = %d, want %d", got, DefaultBackoffAttempts)
	}
	b.Rand = func() float64 { return 0.999999 }
	if d := b.Delay(0, 0); d > DefaultBackoffBase || d < DefaultBackoffBase-time.Millisecond {
		t.Fatalf("attempt 0 delay %v, want ~%v", d, DefaultBackoffBase)
	}
	if d := b.Delay(20, 0); d > DefaultBackoffCap || d < DefaultBackoffCap-time.Millisecond {
		t.Fatalf("deep attempt delay %v, want ~%v", d, DefaultBackoffCap)
	}
}

func TestBackoffRetryExhaustionWrapsTypedError(t *testing.T) {
	var slept []time.Duration
	b := Backoff{Base: time.Millisecond, Cap: time.Millisecond, Attempts: 3,
		Rand:  func() float64 { return 1 },
		Sleep: func(d time.Duration) { slept = append(slept, d) }}
	boom := errors.New("boom")
	calls := 0
	err := b.Retry(context.Background(), func() (bool, time.Duration, error) {
		calls++
		return true, 0, boom
	})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, should wrap the last failure", err)
	}
	if calls != 4 { // initial try + 3 retries
		t.Fatalf("fn ran %d times, want 4", calls)
	}
	if len(slept) != 3 {
		t.Fatalf("slept %d times, want 3 (no sleep after the final failure)", len(slept))
	}
}

func TestBackoffRetryStopsOnNonRetryable(t *testing.T) {
	b := Backoff{Sleep: func(time.Duration) { t.Fatal("must not sleep for a terminal error") }}
	terminal := errors.New("bad request")
	calls := 0
	err := b.Retry(context.Background(), func() (bool, time.Duration, error) {
		calls++
		return false, 0, terminal
	})
	if err != terminal {
		t.Fatalf("err = %v, want the terminal error verbatim", err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
}

func TestBackoffRetrySucceedsMidway(t *testing.T) {
	b := Backoff{Sleep: func(time.Duration) {}}
	calls := 0
	err := b.Retry(context.Background(), func() (bool, time.Duration, error) {
		calls++
		if calls < 3 {
			return true, 0, errors.New("transient")
		}
		return false, 0, nil
	})
	if err != nil {
		t.Fatalf("err = %v, want success", err)
	}
	if calls != 3 {
		t.Fatalf("fn ran %d times, want 3", calls)
	}
}

func TestBackoffRetryRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := Backoff{Attempts: 10, Sleep: func(time.Duration) { cancel() }}
	boom := errors.New("boom")
	err := b.Retry(ctx, func() (bool, time.Duration, error) { return true, 0, boom })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled wrapped", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, should keep the last failure", err)
	}
}

func TestRetryAfterDuration(t *testing.T) {
	if d := RetryAfterDuration(Response{RetryAfter: 7}); d != 7*time.Second {
		t.Fatalf("d = %v, want 7s", d)
	}
	if d := RetryAfterDuration(Response{}); d != 0 {
		t.Fatalf("d = %v, want 0 when absent", d)
	}
}
