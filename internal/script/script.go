// Package script implements a tiny exploration-session language so demo
// sessions can be recorded, replayed and shipped as text files — the
// reproduction's stand-in for a human driving the iPad prototype.
//
// Syntax (one command per line, '#' starts a comment):
//
//	column NAME TABLE COL X Y W H   place a column object
//	table  NAME TABLE     X Y W H   place a table object
//	scan NAME                       configure raw-value touches
//	aggregate NAME AGG              configure a running aggregate
//	summarize NAME AGG K            configure interactive summaries
//	where NAME COL OP VALUE         add a WHERE conjunct
//	valueorder NAME on|off          toggle value-order slides
//	slide NAME DUR [FROM TO]        slide (fractions of height, default 0 1)
//	tap NAME FRAC                   tap at fractional height
//	zoomin NAME FACTOR              pinch zoom in
//	zoomout NAME FACTOR             pinch zoom out
//	rotate NAME                     quarter-turn rotation
//	moveto NAME X Y                 reposition
//	pin NAME NEW X Y W H            promote the hottest region as NEW
//	idle DUR                        lift the finger for DUR
//	render                          print the screen
//
// Durations use Go syntax (2s, 500ms). Aggregates: count sum avg min max
// var stddev. Operators: = <> < <= > >=.
//
// Scripts also travel: Encode translates parsed commands into versioned
// protocol requests (internal/protocol) and Replay routes them through a
// session manager — the same text file drives a local kernel or a remote
// dbtouch-serve identically.
package script

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"dbtouch"
	"dbtouch/internal/operator"
	"dbtouch/internal/viz"
)

// Command is one parsed script line.
type Command struct {
	// Line is the 1-based source line (for error messages).
	Line int
	// Op is the command name, lowercased.
	Op string
	// Args are the remaining fields.
	Args []string
}

// Parse reads a script into commands, dropping comments and blank lines.
func Parse(r io.Reader) ([]Command, error) {
	var out []Command
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		out = append(out, Command{Line: line, Op: strings.ToLower(fields[0]), Args: fields[1:]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("script: reading: %w", err)
	}
	return out, nil
}

// Runner executes commands against a DB, tracking named objects.
type Runner struct {
	DB *dbtouch.DB
	// Out receives render output and per-gesture summaries; nil discards.
	Out io.Writer

	objects map[string]*dbtouch.Object
}

// NewRunner returns a runner over db writing to out.
func NewRunner(db *dbtouch.DB, out io.Writer) *Runner {
	return &Runner{DB: db, Out: out, objects: make(map[string]*dbtouch.Object)}
}

// Object returns a named object created by the script.
func (r *Runner) Object(name string) (*dbtouch.Object, bool) {
	o, ok := r.objects[name]
	return o, ok
}

// Run executes all commands, stopping at the first error.
func (r *Runner) Run(commands []Command) error {
	for _, c := range commands {
		if err := r.exec(c); err != nil {
			return fmt.Errorf("script line %d (%s): %w", c.Line, c.Op, err)
		}
	}
	return nil
}

func (r *Runner) printf(format string, args ...any) {
	if r.Out != nil {
		fmt.Fprintf(r.Out, format, args...)
	}
}

func (r *Runner) exec(c Command) error {
	switch c.Op {
	case "column":
		if len(c.Args) != 7 {
			return fmt.Errorf("want NAME TABLE COL X Y W H, got %d args", len(c.Args))
		}
		geo, err := floats(c.Args[3:7])
		if err != nil {
			return err
		}
		obj, err := r.DB.NewColumnObject(c.Args[1], c.Args[2], geo[0], geo[1], geo[2], geo[3])
		if err != nil {
			return err
		}
		r.objects[c.Args[0]] = obj
		return nil
	case "table":
		if len(c.Args) != 6 {
			return fmt.Errorf("want NAME TABLE X Y W H, got %d args", len(c.Args))
		}
		geo, err := floats(c.Args[2:6])
		if err != nil {
			return err
		}
		obj, err := r.DB.NewTableObject(c.Args[1], geo[0], geo[1], geo[2], geo[3])
		if err != nil {
			return err
		}
		r.objects[c.Args[0]] = obj
		return nil
	case "scan":
		obj, err := r.object(c.Args, 1)
		if err != nil {
			return err
		}
		obj.Scan()
		return nil
	case "aggregate":
		obj, err := r.object(c.Args, 2)
		if err != nil {
			return err
		}
		agg, err := parseAgg(c.Args[1])
		if err != nil {
			return err
		}
		obj.Aggregate(agg)
		return nil
	case "summarize":
		obj, err := r.object(c.Args, 3)
		if err != nil {
			return err
		}
		agg, err := parseAgg(c.Args[1])
		if err != nil {
			return err
		}
		k, err := strconv.Atoi(c.Args[2])
		if err != nil || k < 0 {
			return fmt.Errorf("bad k %q", c.Args[2])
		}
		obj.Summarize(agg, k)
		return nil
	case "where":
		obj, err := r.object(c.Args, 4)
		if err != nil {
			return err
		}
		val, err := strconv.ParseFloat(c.Args[3], 64)
		if err != nil {
			return obj.Where(c.Args[1], c.Args[2], c.Args[3])
		}
		return obj.Where(c.Args[1], c.Args[2], val)
	case "valueorder":
		obj, err := r.object(c.Args, 2)
		if err != nil {
			return err
		}
		on, err := parseOnOff(c.Args[1])
		if err != nil {
			return err
		}
		obj.ValueOrder(on)
		return nil
	case "slide":
		if len(c.Args) != 2 && len(c.Args) != 4 {
			return fmt.Errorf("want NAME DUR [FROM TO], got %d args", len(c.Args))
		}
		obj, ok := r.objects[c.Args[0]]
		if !ok {
			return fmt.Errorf("unknown object %q", c.Args[0])
		}
		dur, err := time.ParseDuration(c.Args[1])
		if err != nil {
			return fmt.Errorf("bad duration %q", c.Args[1])
		}
		from, to := 0.0, 1.0
		if len(c.Args) == 4 {
			fs, err := floats(c.Args[2:4])
			if err != nil {
				return err
			}
			from, to = fs[0], fs[1]
		}
		results := obj.SlideRange(from, to, dur)
		r.printf("slide: %d results in %v\n", len(results), dur)
		return nil
	case "tap":
		obj, err := r.object(c.Args, 2)
		if err != nil {
			return err
		}
		frac, err := strconv.ParseFloat(c.Args[1], 64)
		if err != nil {
			return fmt.Errorf("bad fraction %q", c.Args[1])
		}
		for _, res := range obj.Tap(frac) {
			r.printf("tap: %s\n", res.String())
		}
		return nil
	case "zoomin", "zoomout":
		obj, err := r.object(c.Args, 2)
		if err != nil {
			return err
		}
		factor, err := strconv.ParseFloat(c.Args[1], 64)
		if err != nil || factor <= 0 {
			return fmt.Errorf("bad factor %q", c.Args[1])
		}
		if c.Op == "zoomin" {
			obj.ZoomIn(factor)
		} else {
			obj.ZoomOut(factor)
		}
		return nil
	case "rotate":
		obj, err := r.object(c.Args, 1)
		if err != nil {
			return err
		}
		obj.RotateQuarter()
		return nil
	case "moveto":
		obj, err := r.object(c.Args, 3)
		if err != nil {
			return err
		}
		xy, err := floats(c.Args[1:3])
		if err != nil {
			return err
		}
		obj.MoveTo(xy[0], xy[1])
		return nil
	case "pin":
		if len(c.Args) != 6 {
			return fmt.Errorf("want NAME NEW X Y W H, got %d args", len(c.Args))
		}
		obj, err := r.object(c.Args, 6)
		if err != nil {
			return err
		}
		geo, err := floats(c.Args[2:6])
		if err != nil {
			return err
		}
		pinned, err := obj.PinHotRegion(geo[0], geo[1], geo[2], geo[3])
		if err != nil {
			return err
		}
		r.objects[c.Args[1]] = pinned
		r.printf("pin: %s = %d rows\n", c.Args[1], pinned.Rows())
		return nil
	case "idle":
		if len(c.Args) != 1 {
			return fmt.Errorf("want DUR")
		}
		dur, err := time.ParseDuration(c.Args[0])
		if err != nil {
			return fmt.Errorf("bad duration %q", c.Args[0])
		}
		r.DB.Idle(dur)
		return nil
	case "render":
		r.printf("%s", viz.Render(
			r.DB.Kernel().Screen(), r.DB.Kernel().Objects(), r.DB.Results(), r.DB.Now()))
		return nil
	default:
		return fmt.Errorf("unknown command %q", c.Op)
	}
}

// object resolves Args[0] to an object, validating arity.
func (r *Runner) object(args []string, want int) (*dbtouch.Object, error) {
	if len(args) != want {
		return nil, fmt.Errorf("want %d args, got %d", want, len(args))
	}
	obj, ok := r.objects[args[0]]
	if !ok {
		return nil, fmt.Errorf("unknown object %q", args[0])
	}
	return obj, nil
}

func floats(args []string) ([]float64, error) {
	out := make([]float64, len(args))
	for i, a := range args {
		f, err := strconv.ParseFloat(a, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", a)
		}
		out[i] = f
	}
	return out, nil
}

// parseAgg resolves an aggregate name, case-insensitively, through the
// canonical operator table.
func parseAgg(s string) (dbtouch.AggKind, error) {
	return operator.ParseAggKind(strings.ToLower(s))
}
