// Package experiments regenerates every figure of the paper's evaluation
// plus the ablation studies DESIGN.md calls out. Both the benchmark
// binary (cmd/dbtouch-bench) and the testing.B benches (bench_test.go)
// drive these functions, so the printed series stay identical across
// entry points.
package experiments

import (
	"time"

	"dbtouch"
	"dbtouch/internal/datagen"
	"dbtouch/internal/iomodel"
	"dbtouch/internal/metrics"
)

// Scale sizes the experiment workloads. Full reproduces the paper
// (10^7-value columns); tests use Small to stay fast.
type Scale struct {
	// Rows is the column length for the figure experiments.
	Rows int
	// ContestRows is the data size for the exploration contest.
	ContestRows int
	// TableRows is the table size for the layout-rotation experiment.
	TableRows int
}

// Full is the paper-scale configuration: a column of 10^7 integers.
func Full() Scale {
	return Scale{Rows: 10_000_000, ContestRows: 1_000_000, TableRows: 1_000_000}
}

// Small keeps unit tests fast while preserving every mechanism.
func Small() Scale {
	return Scale{Rows: 200_000, ContestRows: 50_000, TableRows: 20_000}
}

// column materializes the standard experiment column: uniform integers,
// deterministic seed.
func (s Scale) columnData() []int64 {
	return datagen.Ints(datagen.Spec{Dist: datagen.Uniform, N: s.Rows, Seed: 42, Min: 0, Max: 1000})
}

// newDB opens a paper-configured dbTouch instance over the standard
// column, placing a 2x`heightCm` object at (2,2).
func (s Scale) newDB(heightCm float64, opts ...dbtouch.Option) (*dbtouch.DB, *dbtouch.Object) {
	return s.newDBWith(s.columnData(), heightCm, opts...)
}

// newDBWith is newDB over pre-generated column data. Experiments that
// reset the engine between data points reuse one generated column — the
// generator is deterministic, so the data is identical either way and
// columns adopt the slice without copying.
func (s Scale) newDBWith(data []int64, heightCm float64, opts ...dbtouch.Option) (*dbtouch.DB, *dbtouch.Object) {
	db := dbtouch.Open(opts...)
	db.NewTable("t").Int("v", data).MustCreate()
	obj, err := db.NewColumnObject("t", "v", 2, 2, 2, heightCm)
	if err != nil {
		panic(err)
	}
	obj.Summarize(dbtouch.Avg, 10)
	return db, obj
}

// countKind counts results of one kind.
func countKind(results []dbtouch.Result, kind dbtouch.ResultKind) int {
	n := 0
	for _, r := range results {
		if r.Kind == kind {
			n++
		}
	}
	return n
}

// Fig4aGestureSpeed reproduces Figure 4(a): the number of data entries
// returned while completing a top-to-bottom slide (interactive summaries,
// avg, k=10) over a 10 cm object representing 10^7 integers, as the
// gesture completion time varies from 0.5 s to 4 s. Slower slides let the
// dispatcher deliver more distinct touch locations, so more entries are
// processed — the user drills into detail by slowing down.
func Fig4aGestureSpeed(s Scale) *metrics.Series {
	series := &metrics.Series{
		Name:   "Figure 4(a): entries returned vs gesture completion time",
		XLabel: "gesture-secs",
		YLabel: "entries",
	}
	data := s.columnData()
	for _, secs := range []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0} {
		_, obj := s.newDBWith(data, 10)
		results := obj.Slide(time.Duration(secs * float64(time.Second)))
		series.Add(secs, float64(countKind(results, dbtouch.SummaryValue)))
	}
	return series
}

// Fig4bObjectSize reproduces Figure 4(b): entries returned vs object
// size. The object starts at 2.5 cm; each step applies a zoom-in gesture
// doubling its size and slides at the same physical speed (so the slide
// takes double the time, exactly the paper's setup). Larger objects admit
// more touch positions and thus more entries.
func Fig4bObjectSize(s Scale) *metrics.Series {
	series := &metrics.Series{
		Name:   "Figure 4(b): entries returned vs object size",
		XLabel: "object-cm",
		YLabel: "entries",
	}
	const speedCmPerSec = 5.0
	_, obj := s.newDB(2.5, dbtouch.WithScreen(15, 30))
	for step := 0; step < 4; step++ {
		obj.MoveTo(2, 2) // keep the zoomed object fully on screen
		_, _, _, h := obj.Frame()
		dur := time.Duration(h / speedCmPerSec * float64(time.Second))
		results := obj.Slide(dur)
		series.Add(h, float64(countKind(results, dbtouch.SummaryValue)))
		obj.ZoomIn(2)
	}
	return series
}

// ZoomGranularity (extension Ext-9) quantifies §2.5: the object size
// bounds the distinct touch positions and thus the tuples a slide can
// address; zooming in raises the bound. The slide moves slowly enough
// (2 s per cm) that the digitizer resolution, not the slide duration, is
// the binding constraint at every size.
func ZoomGranularity(s Scale) *metrics.Series {
	series := &metrics.Series{
		Name:   "Ext-9: distinct tuples addressable per full slide vs zoom level",
		XLabel: "object-cm",
		YLabel: "distinct-tuples",
	}
	_, obj := s.newDB(1.25, dbtouch.WithScreen(15, 30))
	for step := 0; step < 5; step++ {
		obj.MoveTo(2, 2)
		_, _, _, h := obj.Frame()
		dur := time.Duration(h * 2 * float64(time.Second))
		results := obj.Slide(dur)
		distinct := make(map[int]bool)
		for _, r := range results {
			if r.Kind == dbtouch.SummaryValue {
				distinct[r.TupleID] = true
			}
		}
		series.Add(h, float64(len(distinct)))
		obj.ZoomIn(2)
	}
	return series
}

// heavyIO is the cost model used by the ablation experiments: slower
// storage (flash-class cold fetches) and a fast UI so data-access costs —
// the thing the ablations isolate — dominate per-touch latency.
func heavyIO() iomodel.Params {
	return iomodel.Params{
		BlockValues: 1024,
		ColdLatency: 2 * time.Millisecond,
		WarmLatency: 20 * time.Nanosecond,
		WarmBudget:  4096,
	}
}

// ablationConfig builds a config with heavy I/O and a 5ms UI loop.
func ablationConfig(mutate func(*dbtouch.Config)) dbtouch.Option {
	return func(c *dbtouch.Config) {
		c.UIOverhead = 5 * time.Millisecond
		c.IO = heavyIO()
		if mutate != nil {
			mutate(c)
		}
	}
}
