// Command dbtouch-bench regenerates the paper's evaluation: Figure 4(a),
// Figure 4(b), the Appendix A exploration contest, and the ablation
// experiments DESIGN.md indexes (Ext-1..Ext-10).
//
// Usage:
//
//	dbtouch-bench            # everything at paper scale (10^7 rows)
//	dbtouch-bench -small     # everything at test scale
//	dbtouch-bench -fig 4a    # one experiment: 4a 4b contest samples
//	                         # prefetch caching summaryk adaptive rotate
//	                         # join index zoom remote sessions
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dbtouch/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "experiment to run (4a, 4b, contest, samples, prefetch, caching, summaryk, adaptive, rotate, join, index, zoom, remote, sessions, all)")
	small := flag.Bool("small", false, "run at test scale instead of paper scale")
	flag.Parse()

	scale := experiments.Full()
	if *small {
		scale = experiments.Small()
	}

	type experiment struct {
		name string
		desc string
		run  func()
	}
	out := os.Stdout
	all := []experiment{
		{"4a", "Figure 4(a): vary gesture speed", func() { experiments.Fig4aGestureSpeed(scale).Fprint(out) }},
		{"4b", "Figure 4(b): vary object size", func() { experiments.Fig4bObjectSize(scale).Fprint(out) }},
		{"contest", "Appendix A: exploration contest dbTouch vs DBMS", func() { experiments.Contest(scale).Fprint(out) }},
		{"samples", "Ext-1: sample-based storage ablation", func() { experiments.SampleHierarchy(scale).Fprint(out) }},
		{"prefetch", "Ext-2: gesture-extrapolation prefetching", func() { experiments.Prefetch(scale).Fprint(out) }},
		{"caching", "Ext-3: gesture-aware caching policies", func() { experiments.Caching(scale).Fprint(out) }},
		{"summaryk", "Ext-4: interactive summaries window sweep", func() { experiments.SummaryK(scale).Fprint(out) }},
		{"rotate", "Ext-5: incremental layout rotation", func() { experiments.RotateLayout(scale).Fprint(out) }},
		{"join", "Ext-6: non-blocking vs blocking join", func() { experiments.JoinNonBlocking(scale).Fprint(out) }},
		{"adaptive", "Ext-7: adaptive predicate reordering", func() { experiments.AdaptiveOptimizer(scale).Fprint(out) }},
		{"remote", "Ext-8: remote processing with request batching", func() { experiments.RemoteProcessing(scale).Fprint(out) }},
		{"zoom", "Ext-9: zoom granularity bound", func() { experiments.ZoomGranularity(scale).Fprint(out) }},
		{"index", "Ext-10: per-sample-level indexing", func() { experiments.IndexedSlide(scale).Fprint(out) }},
		{"sessions", "Ext-11: concurrent exploration sessions over shared storage", func() { experiments.ConcurrentSessions(scale).Fprint(out) }},
	}

	want := strings.ToLower(*fig)
	ran := 0
	for _, e := range all {
		if want != "all" && want != e.name {
			continue
		}
		fmt.Fprintf(out, "=== %s ===\n", e.desc)
		e.run()
		fmt.Fprintln(out)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "dbtouch-bench: unknown experiment %q\n", *fig)
		os.Exit(2)
	}
}
