package dbtouch

import (
	"fmt"
	"time"

	"dbtouch/internal/storage"
)

// Live ingestion facade: a live table is appendable while exploration
// sessions slide over it. Every append batch publishes a new immutable
// snapshot epoch; each gesture batch pins the newest epoch for its whole
// duration, so a session always reads a consistent frozen prefix — "now"
// is a version, not a moving target. See ARCHITECTURE.md, "Ingestion &
// snapshots".

// LiveTableBuilder assembles a live (appendable) table column by column.
// Columns may start empty or pre-seeded; all must have equal lengths.
type LiveTableBuilder struct {
	db   *DB
	name string
	cols []*storage.Column
}

// NewLiveTable starts building a live table with the given name.
func (db *DB) NewLiveTable(name string) *LiveTableBuilder {
	return &LiveTableBuilder{db: db, name: name}
}

// Int adds an INT column (pass nil to start empty).
func (b *LiveTableBuilder) Int(name string, vals []int64) *LiveTableBuilder {
	b.cols = append(b.cols, storage.NewIntColumn(name, vals))
	return b
}

// Float adds a FLOAT column.
func (b *LiveTableBuilder) Float(name string, vals []float64) *LiveTableBuilder {
	b.cols = append(b.cols, storage.NewFloatColumn(name, vals))
	return b
}

// Bool adds a BOOL column.
func (b *LiveTableBuilder) Bool(name string, vals []bool) *LiveTableBuilder {
	b.cols = append(b.cols, storage.NewBoolColumn(name, vals))
	return b
}

// String adds a dictionary-encoded STRING column.
func (b *LiveTableBuilder) String(name string, vals []string) *LiveTableBuilder {
	b.cols = append(b.cols, storage.NewStringColumn(name, vals))
	return b
}

// Create registers the live table and returns its handle. Objects placed
// on it (NewColumnObject/NewTableObject with this table's name) bind to
// snapshots and follow appends batch by batch.
func (b *LiveTableBuilder) Create() (*LiveTable, error) {
	t, err := storage.NewTable(b.name, b.cols...)
	if err != nil {
		return nil, fmt.Errorf("dbtouch: creating live table %q: %w", b.name, err)
	}
	b.db.kernel.Catalog().RegisterLive(t)
	return &LiveTable{db: b.db, table: t}, nil
}

// MustCreate registers the live table, panicking on error.
func (b *LiveTableBuilder) MustCreate() *LiveTable {
	t, err := b.Create()
	if err != nil {
		panic(err)
	}
	return t
}

// LiveTable is the ingestion handle for one live table. Appends are safe
// from any goroutine, including while sessions explore the table.
type LiveTable struct {
	db    *DB
	table *storage.Table
}

// Append appends one row (values in declaration order, coerced like the
// query facade: int/int64/float64/bool/string) and publishes a snapshot.
func (lt *LiveTable) Append(vals ...any) error {
	row := make([]storage.Value, len(vals))
	for i, v := range vals {
		row[i] = toValue(v)
	}
	_, err := lt.table.AppendRow(row)
	return err
}

// AppendBatch appends many rows under one snapshot publication — readers
// observe the whole batch or none of it. Under an append rate limit, a
// rejected batch returns an error satisfying errors.Is(err,
// storage.ErrAppendLimited); back off and retry.
func (lt *LiveTable) AppendBatch(rows [][]any) error {
	batch := make([][]storage.Value, len(rows))
	for i, r := range rows {
		vals := make([]storage.Value, len(r))
		for j, v := range r {
			vals[j] = toValue(v)
		}
		batch[i] = vals
	}
	_, err := lt.table.AppendBatch(batch)
	return err
}

// Rows reports the currently published row count.
func (lt *LiveTable) Rows() int { return lt.table.Rows() }

// Epoch reports the currently published snapshot epoch (1 at creation,
// +1 per non-empty append batch).
func (lt *LiveTable) Epoch() uint64 { return lt.table.Epoch() }

// Retain installs a retention policy: maxRows caps live rows (0 =
// unbounded); maxAge drops rows whose ageColumn (an INT column of Unix
// nanosecond timestamps, nondecreasing in row order) falls behind
// now-maxAge (0 = unbounded). Reclamation is amortized; see
// docs/operations.md for the bounds.
func (lt *LiveTable) Retain(maxRows int, maxAge time.Duration, ageColumn string) error {
	return lt.table.SetRetention(storage.Retention{MaxRows: maxRows, MaxAge: maxAge, AgeColumn: ageColumn})
}

// LimitAppends installs a token-bucket append rate limit of rowsPerSec
// with the given burst (rows). rowsPerSec <= 0 removes the limit.
func (lt *LiveTable) LimitAppends(rowsPerSec float64, burst int) {
	lt.table.SetAppendLimit(rowsPerSec, burst)
}

// Table exposes the storage-level handle for advanced use (snapshot
// inspection, serving over the wire).
func (lt *LiveTable) Table() *storage.Table { return lt.table }
