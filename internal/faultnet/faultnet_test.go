package faultnet

import (
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func newProxy(t *testing.T, upstream string) *Proxy {
	t.Helper()
	p, err := New(upstream)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// roundTrip writes msg and reads len(msg) echoed bytes back.
func roundTrip(t *testing.T, c net.Conn, msg []byte) ([]byte, error) {
	t.Helper()
	if _, err := c.Write(msg); err != nil {
		return nil, err
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, err := io.ReadFull(c, got)
	return got, err
}

func TestTransparentByDefault(t *testing.T) {
	ln := echoServer(t)
	p := newProxy(t, ln.Addr().String())
	c := dial(t, p.Addr())
	msg := bytes.Repeat([]byte("dbtouch"), 4096)
	got, err := roundTrip(t, c, msg)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("zero-toxic proxy corrupted the stream (%d bytes differ)", len(msg))
	}
	if p.Bytes() < int64(2*len(msg)) {
		t.Fatalf("proxy byte counter %d, want >= %d", p.Bytes(), 2*len(msg))
	}
}

func TestLatencyToxic(t *testing.T) {
	ln := echoServer(t)
	p := newProxy(t, ln.Addr().String())
	c := dial(t, p.Addr())
	msg := []byte("ping")

	// Baseline, then with 60ms one-way latency: the echo crosses the
	// proxy twice, so the round trip gains >= 2x the injected delay.
	start := time.Now()
	if _, err := roundTrip(t, c, msg); err != nil {
		t.Fatal(err)
	}
	base := time.Since(start)

	p.Set(Toxics{Latency: 60 * time.Millisecond})
	start = time.Now()
	if _, err := roundTrip(t, c, msg); err != nil {
		t.Fatal(err)
	}
	slow := time.Since(start)
	if slow < base+100*time.Millisecond {
		t.Fatalf("latency toxic: round trip %v (baseline %v), want >= baseline+100ms", slow, base)
	}
}

func TestBandwidthToxic(t *testing.T) {
	ln := echoServer(t)
	p := newProxy(t, ln.Addr().String())
	c := dial(t, p.Addr())

	// 64 KiB through a 256 KiB/s pipe takes >= 250ms per direction;
	// the two directions pipeline, so assert the single-direction
	// floor (a clean proxy does this round trip in ~1ms).
	p.Set(Toxics{BandwidthBPS: 256 << 10})
	msg := bytes.Repeat([]byte("x"), 64<<10)
	start := time.Now()
	if _, err := roundTrip(t, c, msg); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < 200*time.Millisecond {
		t.Fatalf("bandwidth toxic: 64KiB round trip took %v, want >= 200ms", got)
	}
}

func TestTearToxicSplitsWritesLosslessly(t *testing.T) {
	ln := echoServer(t)
	p := newProxy(t, ln.Addr().String())
	c := dial(t, p.Addr())
	p.Set(Toxics{Tear: true})
	msg := bytes.Repeat([]byte("0123456789abcdef"), 512)
	got, err := roundTrip(t, c, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("tear toxic must reorder nothing: bytes differ")
	}
}

func TestCutAfterResetsMidStream(t *testing.T) {
	ln := echoServer(t)
	p := newProxy(t, ln.Addr().String())
	c := dial(t, p.Addr())
	p.Set(Toxics{CutAfter: 1000, Tear: true})

	// Stream well past the budget: the connection must die with a
	// reset after ~1000 forwarded bytes, never a clean full echo.
	msg := bytes.Repeat([]byte("y"), 64<<10)
	c.SetDeadline(time.Now().Add(5 * time.Second))
	wrote, _ := c.Write(msg) // may fail midway once the cut lands
	got, err := io.ReadAll(c)
	if err == nil && wrote == len(msg) && len(got) == len(msg) {
		t.Fatal("cut toxic: full message survived a 1000-byte budget")
	}
	if len(got) > 1000 {
		t.Fatalf("cut toxic: %d bytes arrived, budget was 1000 total", len(got))
	}
}

func TestBlackholeToxic(t *testing.T) {
	ln := echoServer(t)
	p := newProxy(t, ln.Addr().String())
	c := dial(t, p.Addr())
	p.Set(Toxics{Blackhole: true})
	if _, err := c.Write([]byte("anyone home?")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	buf := make([]byte, 16)
	if n, err := c.Read(buf); err == nil {
		t.Fatalf("blackhole toxic: %d bytes came back, want timeout", n)
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("blackhole toxic: read failed with %v, want timeout", err)
	}
	// Healing the blackhole restores the connection for later bytes.
	p.Set(Toxics{})
	if _, err := roundTrip(t, c, []byte("hello")); err != nil {
		t.Fatalf("healed blackhole: %v", err)
	}
}

func TestResetOnDial(t *testing.T) {
	ln := echoServer(t)
	p := newProxy(t, ln.Addr().String())
	p.Set(Toxics{ResetOnDial: true})
	// The reset may surface at dial time (RST during handshake
	// completion) or at first use; either way the connection is dead.
	c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		return // reset landed during dial: toxic observed
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	_, werr := c.Write([]byte("x"))
	_, rerr := c.Read(buf)
	if werr == nil && rerr == nil {
		t.Fatal("reset-on-dial: connection stayed usable")
	}
}

func TestResetAllKillsLiveConnections(t *testing.T) {
	ln := echoServer(t)
	p := newProxy(t, ln.Addr().String())
	a := dial(t, p.Addr())
	b := dial(t, p.Addr())
	if _, err := roundTrip(t, a, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	p.ResetAll()
	for _, c := range []net.Conn{a, b} {
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 1)
		if _, err := c.Read(buf); err == nil {
			t.Fatal("ResetAll: connection survived")
		} else if strings.Contains(err.Error(), "timeout") {
			t.Fatalf("ResetAll: read timed out instead of failing fast: %v", err)
		}
	}
	// New connections work again — the proxy itself survived.
	c := dial(t, p.Addr())
	if _, err := roundTrip(t, c, []byte("back")); err != nil {
		t.Fatalf("post-ResetAll dial: %v", err)
	}
}
