// Package dbtouch is a touch-driven database kernel for interactive data
// exploration, reproducing "dbTouch: Analytics at your Fingertips"
// (Idreos & Liarou, CIDR 2013).
//
// Data objects — columns and tables — live on a simulated touch screen.
// Queries are not statements but gestures: sliding a finger over an
// object scans it, runs running aggregates, or produces interactive
// summaries; pinching zooms the object (changing the data granularity a
// slide can reach); rotating flips the physical layout between row- and
// column-order. The user's touch stream controls the data flow; the
// kernel reacts to every touch, feeding from sample hierarchies,
// prefetching along the predicted gesture path, and adapting query plans
// on the fly.
//
// Everything runs on a virtual clock, so exploration sessions and
// benchmarks are deterministic and hardware independent.
//
// Quick start:
//
//	db := dbtouch.Open()
//	db.NewTable("readings").Float("temp", temps).MustCreate()
//	obj, _ := db.NewColumnObject("readings", "temp", 2, 2, 2, 10)
//	obj.Summarize(dbtouch.Avg, 10)
//	results := obj.Slide(2 * time.Second) // slide top to bottom for 2s
package dbtouch

import (
	"fmt"
	"io"
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/gesture"
	"dbtouch/internal/metrics"
	"dbtouch/internal/operator"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
	"dbtouch/internal/vclock"
)

// Re-exported result and configuration types. Aliases keep the internal
// kernel private while letting callers name everything they receive.
type (
	// Result is one answer popped up by one touch.
	Result = core.Result
	// ResultKind classifies results.
	ResultKind = core.ResultKind
	// Actions is the per-object touch/query configuration.
	Actions = core.Actions
	// Mode selects what a touch executes.
	Mode = core.Mode
	// AggKind selects an aggregate function.
	AggKind = operator.AggKind
	// Predicate is one WHERE conjunct.
	Predicate = operator.Predicate
	// Config is the kernel configuration (advanced use).
	Config = core.Config
)

// Result kinds.
const (
	ScanValue      = core.ScanValue
	AggregateValue = core.AggregateValue
	SummaryValue   = core.SummaryValue
	TuplePeek      = core.TuplePeek
	GroupValue     = core.GroupValue
	JoinMatches    = core.JoinMatches
)

// Touch modes.
const (
	ModeScan      = core.ModeScan
	ModeAggregate = core.ModeAggregate
	ModeSummary   = core.ModeSummary
)

// Aggregate kinds.
const (
	Count  = operator.Count
	Sum    = operator.Sum
	Avg    = operator.Avg
	Min    = operator.Min
	Max    = operator.Max
	Var    = operator.Var
	Stddev = operator.Stddev
)

// Option adjusts the kernel configuration at Open time.
type Option func(*core.Config)

// WithScreen sizes the virtual screen in centimeters.
func WithScreen(w, h float64) Option {
	return func(c *core.Config) { c.ScreenW, c.ScreenH = w, h }
}

// WithUIOverhead sets the fixed per-touch UI cost (device speed knob).
func WithUIOverhead(d time.Duration) Option {
	return func(c *core.Config) { c.UIOverhead = d }
}

// WithSamples toggles sample-based storage.
func WithSamples(on bool) Option {
	return func(c *core.Config) { c.UseSamples = on }
}

// WithPrefetch toggles gesture-extrapolation prefetching.
func WithPrefetch(on bool) Option {
	return func(c *core.Config) { c.Prefetch = on }
}

// WithAdaptiveOptimizer toggles on-the-fly predicate reordering.
func WithAdaptiveOptimizer(on bool) Option {
	return func(c *core.Config) { c.AdaptiveOpt = on }
}

// WithResponseBound caps per-touch processing; the kernel degrades to
// coarser samples to respect it.
func WithResponseBound(d time.Duration) Option {
	return func(c *core.Config) { c.ResponseBound = d }
}

// WithCachePolicy selects "lru", "gesture-aware" or "none".
func WithCachePolicy(name string) Option {
	return func(c *core.Config) {
		switch name {
		case "gesture-aware":
			c.CachePolicy = core.PolicyGestureAware
		case "none":
			c.CachePolicy = core.PolicyNone
		default:
			c.CachePolicy = core.PolicyLRU
		}
	}
}

// WithConfig replaces the whole configuration (advanced use).
func WithConfig(cfg Config) Option {
	return func(c *core.Config) { *c = cfg }
}

// DB is a dbTouch instance: a kernel plus a gesture synthesizer that
// turns high-level calls (Slide, Tap, ZoomIn...) into digitizer-rate
// touch streams.
type DB struct {
	kernel *core.Kernel
	synth  gesture.Synth
}

// Open creates a dbTouch instance.
func Open(opts ...Option) *DB {
	cfg := core.DefaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return &DB{kernel: core.NewKernel(cfg)}
}

// Kernel exposes the underlying kernel for advanced scenarios and the
// benchmark harness.
func (db *DB) Kernel() *core.Kernel { return db.kernel }

// Clock exposes the virtual clock.
func (db *DB) Clock() *vclock.Clock { return db.kernel.Clock() }

// Now reports the current virtual time.
func (db *DB) Now() time.Duration { return db.kernel.Clock().Now() }

// LoadCSV loads a table from CSV (header "name:TYPE,..." — see
// storage.ReadCSV) and registers it.
func (db *DB) LoadCSV(name string, r io.Reader) error {
	m, err := storage.ReadCSV(name, r)
	if err != nil {
		return err
	}
	db.kernel.Catalog().Register(m)
	return nil
}

// Tables lists loaded table names.
func (db *DB) Tables() []string { return db.kernel.Catalog().List() }

// TouchLatency returns the per-touch latency histogram.
func (db *DB) TouchLatency() *metrics.Histogram { return db.kernel.TouchLatency() }

// Results returns the retained results: everything still visible on
// screen plus all results of the latest gesture. Faded results are
// pruned between gestures; use OnResult to observe the full stream.
func (db *DB) Results() []Result { return db.kernel.Results() }

// OnResult registers a live result callback (front-end hook).
func (db *DB) OnResult(fn func(Result)) { db.kernel.OnResult(fn) }

// Idle advances virtual time with no touch activity, letting background
// machinery (prefetch, layout conversion) use the gap — e.g. the user
// lifted the finger and is looking at the screen.
func (db *DB) Idle(d time.Duration) {
	from := db.kernel.Clock().Now()
	db.kernel.RunIdle(from, from+d)
}

// Apply pushes a raw touch-event stream through the kernel (advanced
// use; the Object methods synthesize streams for you).
func (db *DB) Apply(events []touchos.TouchEvent) []Result {
	return db.kernel.Apply(events)
}

// NewColumnObject places column of table on screen at (x, y) with size
// (w, h) centimeters and returns its handle.
func (db *DB) NewColumnObject(table, column string, x, y, w, h float64) (*Object, error) {
	m, err := db.kernel.Catalog().Get(table)
	if err != nil {
		return nil, err
	}
	idx := m.ColumnIndex(column)
	if idx < 0 {
		return nil, fmt.Errorf("dbtouch: table %q has no column %q", table, column)
	}
	obj, err := db.kernel.CreateColumnObject(m, idx, touchos.NewRect(x, y, w, h))
	if err != nil {
		return nil, err
	}
	return &Object{db: db, inner: obj}, nil
}

// NewTableObject places the whole table on screen as a fat rectangle.
func (db *DB) NewTableObject(table string, x, y, w, h float64) (*Object, error) {
	m, err := db.kernel.Catalog().Get(table)
	if err != nil {
		return nil, err
	}
	obj, err := db.kernel.CreateTableObject(m, touchos.NewRect(x, y, w, h))
	if err != nil {
		return nil, err
	}
	return &Object{db: db, inner: obj}, nil
}

// ProjectColumnOut drags the named column out of a table object into its
// own single-column object at (x, y, w, h) — the paper's §2.8 gesture for
// getting faster response times by touching only the needed data.
func (db *DB) ProjectColumnOut(table *Object, column string, x, y, w, h float64) (*Object, error) {
	idx := table.inner.Matrix().ColumnIndex(column)
	if idx < 0 {
		return nil, fmt.Errorf("dbtouch: no column %q in object %d", column, table.ID())
	}
	obj, err := db.kernel.ProjectColumnOut(table.inner, idx, touchos.NewRect(x, y, w, h))
	if err != nil {
		return nil, err
	}
	return &Object{db: db, inner: obj}, nil
}

// gestureStart returns the next free virtual instant for a synthesized
// gesture (never in the past).
func (db *DB) gestureStart() time.Duration {
	return db.kernel.Clock().Now()
}
