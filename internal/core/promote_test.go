package core

import (
	"testing"
	"time"

	"dbtouch/internal/gesture"
	"dbtouch/internal/touchos"
)

// revisitRegion slides back and forth over a narrow band of the object so
// the gesture-aware policy accumulates touch counts there.
func revisitRegion(k *Kernel, obj *Object, fromFrac, toFrac float64, passes int) {
	synth := gesture.Synth{}
	f := obj.View().Frame()
	yAt := func(frac float64) float64 { return f.Origin.Y + frac*f.Size.H }
	x := f.Origin.X + f.Size.W/2
	start := k.Clock().Now() + time.Millisecond
	events := synth.BackAndForth(
		touchos.Point{X: x, Y: yAt(fromFrac)},
		touchos.Point{X: x, Y: yAt(toFrac)},
		start, time.Second, passes,
	)
	k.Apply(events)
}

func TestHotRegionsDetectRevisits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseSamples = false // keep touches on base level where counting happens
	cfg.CachePolicy = PolicyGestureAware
	k, obj := testKernel(t, 100000, cfg)
	revisitRegion(k, obj, 0.4, 0.6, 3)
	regions := obj.HotRegions(2)
	if len(regions) == 0 {
		t.Fatal("no hot regions after heavy revisits")
	}
	top := regions[0]
	// The revisited band maps to tuples ≈[40000, 60000].
	if top.Hi < 40000 || top.Lo > 60000 {
		t.Fatalf("hot region [%d,%d) misses the revisited band", top.Lo, top.Hi)
	}
}

func TestHotRegionsEmptyWithoutTouches(t *testing.T) {
	k, obj := testKernel(t, 100000, DefaultConfig())
	_ = k
	if regions := obj.HotRegions(2); regions != nil {
		t.Fatalf("untouched object reported hot regions: %v", regions)
	}
}

func TestHotRegionsLocalizeUnderSampling(t *testing.T) {
	// Even when touches are served from coarse sample levels, the touch
	// histogram localizes the revisited band in base-tuple space.
	k, obj := testKernel(t, 1_000_000, DefaultConfig())
	revisitRegion(k, obj, 0.5, 0.75, 3)
	regions := obj.HotRegions(2)
	if len(regions) == 0 {
		t.Fatal("no hot regions")
	}
	top := regions[0]
	if top.Hi-top.Lo > 500_000 {
		t.Fatalf("hot region [%d,%d) not localized", top.Lo, top.Hi)
	}
	if top.Lo > 760_000 || top.Hi < 490_000 {
		t.Fatalf("hot region [%d,%d) misses the revisited band", top.Lo, top.Hi)
	}
}

func TestPromoteHotRegion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseSamples = false
	cfg.CachePolicy = PolicyGestureAware
	k, obj := testKernel(t, 100000, cfg)
	revisitRegion(k, obj, 0.4, 0.6, 3)

	promoted, err := k.PromoteHotRegion(obj, touchos.NewRect(6, 2, 2, 10))
	if err != nil {
		t.Fatal(err)
	}
	if promoted.Rows() >= obj.Rows() {
		t.Fatalf("promoted region %d rows should be a subset of %d", promoted.Rows(), obj.Rows())
	}
	if promoted.Rows() == 0 {
		t.Fatal("promoted region empty")
	}
	// The promoted object inherits the source's actions and is
	// immediately explorable.
	if promoted.Actions().Mode != obj.Actions().Mode {
		t.Fatal("promoted object should inherit actions")
	}
	results := k.Apply(slideEvents(promoted, time.Second, k.Clock().Now()+time.Millisecond))
	if countResults(results, SummaryValue) == 0 {
		t.Fatal("promoted object not explorable")
	}
	if k.Counters().Get("cache.promotions") != 1 {
		t.Fatal("promotion counter missing")
	}
}

func TestPromoteHotRegionErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CachePolicy = PolicyGestureAware
	k, obj := testKernel(t, 1000, cfg)
	// No gestures yet: nothing hot.
	if _, err := k.PromoteHotRegion(obj, touchos.NewRect(6, 2, 2, 10)); err == nil {
		t.Fatal("promotion without hot regions should error")
	}
}
