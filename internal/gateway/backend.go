package gateway

import (
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is a backend's circuit-breaker state.
type BreakerState int32

const (
	// BreakerClosed: the backend is taking traffic normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the backend failed FailThreshold consecutive times
	// and receives no client traffic until its cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; only the health prober
	// talks to the backend. SuccessThreshold consecutive probe
	// successes close the breaker — client traffic never races the
	// recovery check, so a just-recovered backend is not stampeded.
	BreakerHalfOpen
)

// String renders the state for stats and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// backend is one dbtouch-serve instance behind the gateway: its address
// plus the breaker and draining state the router consults.
type backend struct {
	base string // server root, e.g. "http://127.0.0.1:8081"

	mu          sync.Mutex
	state       BreakerState
	draining    bool
	consecFails int       // consecutive failures while closed
	halfOpenOKs int       // consecutive probe successes while half-open
	openedAt    time.Time // when the breaker last tripped

	// Monotonic counters for /gatewayz.
	probes     atomic.Int64
	probeFails atomic.Int64
	trips      atomic.Int64
}

// BackendStats is one backend's row in the gateway stats snapshot.
type BackendStats struct {
	Addr        string `json:"addr"`
	State       string `json:"state"`
	Draining    bool   `json:"draining,omitempty"`
	Ready       bool   `json:"ready"`
	ConsecFails int    `json:"consecFails,omitempty"`
	Probes      int64  `json:"probes"`
	ProbeFails  int64  `json:"probeFails,omitempty"`
	Trips       int64  `json:"trips,omitempty"`
}

// ready reports whether the router may place traffic on the backend:
// breaker closed and not draining.
func (b *backend) ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == BreakerClosed && !b.draining
}

// breakerState returns the current state and when it was entered (for
// Open, the trip time that starts the cooldown clock).
func (b *backend) breakerState() (BreakerState, time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.openedAt
}

// toHalfOpen moves an open breaker to half-open once its cooldown
// elapsed; the prober calls this before probing a tripped backend.
func (b *backend) toHalfOpen() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		b.state = BreakerHalfOpen
		b.halfOpenOKs = 0
	}
}

// noteSuccess records a successful interaction. Request-path successes
// only reset the failure streak; closing a tripped breaker is the
// prober's call alone (fromProbe), needing successThreshold consecutive
// probe successes — the flap damping that keeps a backend bouncing
// between alive and dead from being readmitted on one good reply.
// Reports whether the breaker closed on this call.
func (b *backend) noteSuccess(fromProbe bool, successThreshold int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails = 0
	if b.state == BreakerHalfOpen && fromProbe {
		b.halfOpenOKs++
		if b.halfOpenOKs >= successThreshold {
			b.state = BreakerClosed
			return true
		}
	}
	return false
}

// noteFailure records a failed interaction (probe or request path).
// failThreshold consecutive failures trip a closed breaker; any failure
// re-trips a half-open one, restarting the cooldown. Reports whether
// the breaker tripped on this call.
func (b *backend) noteFailure(failThreshold int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.consecFails++
		if b.consecFails >= failThreshold {
			b.state = BreakerOpen
			b.openedAt = time.Now()
			b.trips.Add(1)
			return true
		}
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = time.Now()
		b.halfOpenOKs = 0
		b.trips.Add(1)
		return true
	}
	return false
}

// setDraining flips the draining flag; returns true when this call is
// the transition into draining (the moment to migrate sessions away).
func (b *backend) setDraining(v bool) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	was := b.draining
	b.draining = v
	return v && !was
}

// snapshot renders the backend for /gatewayz.
func (b *backend) snapshot() BackendStats {
	b.mu.Lock()
	state, draining, fails := b.state, b.draining, b.consecFails
	b.mu.Unlock()
	return BackendStats{
		Addr:        b.base,
		State:       state.String(),
		Draining:    draining,
		Ready:       state == BreakerClosed && !draining,
		ConsecFails: fails,
		Probes:      b.probes.Load(),
		ProbeFails:  b.probeFails.Load(),
		Trips:       b.trips.Load(),
	}
}
