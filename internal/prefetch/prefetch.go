// Package prefetch implements gesture extrapolation and data prefetching
// (paper §2.6 "Prefetching Data"): "dbTouch can extrapolate the gesture
// progression (speed and direction) and fetch the expected entries such
// that they are readily available if the gesture resumes."
//
// The Extrapolator tracks tuple-id velocity with exponential smoothing;
// the Prefetcher spends kernel idle time (gaps between delivered touches,
// reported by the dispatcher) warming the blocks the gesture is predicted
// to reach next.
package prefetch

import (
	"time"

	"dbtouch/internal/iomodel"
)

// Extrapolator estimates where a slide gesture is heading in tuple-id
// space.
type Extrapolator struct {
	// Alpha is the EMA smoothing factor in (0, 1]; zero selects 0.4.
	Alpha float64

	lastID     int
	lastTime   time.Duration
	velocity   float64 // tuples per second, signed
	interTouch time.Duration
	observed   int
}

// Observe records that the gesture touched tuple id at virtual time t.
func (e *Extrapolator) Observe(id int, t time.Duration) {
	alpha := e.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.4
	}
	if e.observed > 0 {
		dt := t - e.lastTime
		if dt > 0 {
			inst := float64(id-e.lastID) / dt.Seconds()
			e.velocity = alpha*inst + (1-alpha)*e.velocity
			e.interTouch = time.Duration(alpha*float64(dt) + (1-alpha)*float64(e.interTouch))
		}
	}
	e.lastID = id
	e.lastTime = t
	e.observed++
}

// Velocity reports the smoothed tuple velocity (tuples/second, signed by
// direction).
func (e *Extrapolator) Velocity() float64 { return e.velocity }

// Direction reports the current movement direction: -1, 0, or +1.
func (e *Extrapolator) Direction() int {
	switch {
	case e.velocity > 1:
		return 1
	case e.velocity < -1:
		return -1
	default:
		return 0
	}
}

// Predict extrapolates the tuple range the gesture will cover during the
// next horizon, starting from the last observed id. The range is ordered
// (from <= to); a zero-velocity gesture predicts a small symmetric
// neighborhood (the user paused and may go either way).
func (e *Extrapolator) Predict(horizon time.Duration) (from, to int) {
	if e.observed == 0 {
		return 0, 0
	}
	delta := int(e.velocity * horizon.Seconds())
	if delta == 0 {
		// Paused: prepare both directions a little.
		return e.lastID - 64, e.lastID + 64
	}
	if delta > 0 {
		return e.lastID, e.lastID + delta
	}
	return e.lastID + delta, e.lastID
}

// Observed reports how many touches have been observed.
func (e *Extrapolator) Observed() int { return e.observed }

// LastID reports the most recently observed tuple id.
func (e *Extrapolator) LastID() int { return e.lastID }

// InterTouch reports the smoothed time between processed touches.
func (e *Extrapolator) InterTouch() time.Duration { return e.interTouch }

// StepSize reports the expected tuple-id distance between consecutive
// touches (signed). Prefetching warms these positions, not the contiguous
// range — the gesture skips everything in between.
func (e *Extrapolator) StepSize() float64 {
	return e.velocity * e.interTouch.Seconds()
}

// Reset clears gesture history (call between gestures).
func (e *Extrapolator) Reset() {
	v := e.Alpha
	*e = Extrapolator{Alpha: v}
}

// Stats counts prefetcher activity.
type Stats struct {
	// IdleSpent is virtual idle time consumed warming blocks.
	IdleSpent time.Duration
	// Invocations counts idle windows used.
	Invocations int
}

// Prefetcher converts idle windows into warm blocks along the predicted
// path.
type Prefetcher struct {
	// Enabled gates the whole mechanism (the ablation switch).
	Enabled bool
	// Horizon is how far ahead (virtual time) to extrapolate; zero
	// selects 500ms.
	Horizon time.Duration
	// Slack is the relative velocity-estimate error budget: each
	// predicted position k steps ahead is warmed with a halo of
	// ±Slack·|step|·k tuples. Zero selects 0.08.
	Slack float64
	// Extrapolator supplies predictions.
	Extrapolator *Extrapolator

	stats Stats
	// anchor and frontier extend prefetching across consecutive idle
	// windows of one pause: while the gesture stays at anchor, each
	// window continues from where the previous one stopped instead of
	// re-walking the already-warm prediction.
	anchor     int
	frontier   int
	haveAnchor bool
}

// New returns an enabled prefetcher over the given extrapolator.
func New(e *Extrapolator) *Prefetcher {
	return &Prefetcher{Enabled: true, Extrapolator: e}
}

// OnIdle spends the idle window [from, to) warming predicted blocks in
// tracker. The clamp function (optional) bounds predicted tuple ids to
// the valid range.
func (p *Prefetcher) OnIdle(from, to time.Duration, tracker *iomodel.Tracker, clamp func(int) int) {
	if p == nil || !p.Enabled || p.Extrapolator == nil || tracker == nil {
		return
	}
	budget := to - from
	if budget <= 0 {
		return
	}
	horizon := p.Horizon
	if horizon <= 0 {
		horizon = 500 * time.Millisecond
	}
	last := p.Extrapolator.LastID()
	if p.haveAnchor && p.anchor != last {
		p.frontier = 0
	}
	p.anchor, p.haveAnchor = last, true

	step := p.Extrapolator.StepSize()
	interTouch := p.Extrapolator.InterTouch()
	var used time.Duration
	stepMag := step
	if stepMag < 0 {
		stepMag = -stepMag
	}
	if stepMag < 1 || interTouch <= 0 {
		// No reliable stride (gesture barely started): warm the
		// immediate neighborhood symmetrically.
		lo, hi := p.Extrapolator.Predict(horizon)
		if clamp != nil {
			lo, hi = clamp(lo), clamp(hi)
		}
		if hi < lo {
			lo, hi = hi, lo
		}
		used, _ = tracker.PrefetchRange(lo, hi, budget)
		p.account(used)
		return
	}
	// Warm the predicted touch positions: the gesture skips the tuples
	// in between, so contiguous-range warming would waste the idle
	// budget many times over. Velocity estimates carry error, so each
	// position k steps out gets a halo proportional to the distance.
	slack := p.Slack
	if slack <= 0 {
		slack = 0.08
	}
	steps := int(float64(horizon) / float64(interTouch))
	if steps < 1 {
		steps = 1
	}
	start := p.frontier
	for k := start + 1; k <= start+steps; k++ {
		id := last + int(step*float64(k))
		margin := int(slack * stepMag * float64(k))
		if margin < 64 {
			margin = 64 // always cover a summary window
		}
		lo, hi := id-margin, id+margin
		center := id
		if clamp != nil {
			lo, hi, center = clamp(lo), clamp(hi), clamp(id)
		}
		if budget-used <= 0 {
			break
		}
		// The predicted center is the most likely touch: warm it first
		// so a tight budget still covers it before the halo.
		used += tracker.PrefetchBlock(center, budget-used)
		cost, _ := tracker.PrefetchRange(lo, hi, budget-used)
		used += cost
		p.frontier = k
	}
	p.account(used)
}

func (p *Prefetcher) account(used time.Duration) {
	if used > 0 {
		p.stats.IdleSpent += used
		p.stats.Invocations++
	}
}

// Stats returns a snapshot of prefetch activity.
func (p *Prefetcher) Stats() Stats { return p.stats }
