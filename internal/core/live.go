package core

import (
	"dbtouch/internal/index"
	"dbtouch/internal/sample"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
)

// Live ingestion at the kernel layer: objects over a live table read one
// pinned snapshot for a whole gesture batch. Apply repins at batch start
// — the moment the ISSUE's contract names — so within a batch every
// touch, filter, group and join sees one frozen version, and between
// batches the kernel hops to the newest published version, rebinding
// objects in place so trackers, running aggregates and group tables
// survive the hop.

// livePin is the kernel's reference to one live table's pinned version.
// Pins live in a slice, not a map: repin and rebind order is then the
// deterministic object-creation order, which the equivalence suite
// relies on when it replays recorded epochs.
type livePin struct {
	table *storage.Table
	pin   *sample.Pinned
}

// ShareLive rewires the kernel onto a cross-session live store (the
// session manager calls it next to ShareStorage, before any objects
// exist). Standalone kernels lazily make a private store instead.
func (k *Kernel) ShareLive(ls *sample.LiveStore) {
	if len(k.objects) > 0 {
		panic("core: ShareLive after objects were created")
	}
	k.live = ls
}

// liveStore returns the kernel's live store, creating a private one for
// standalone kernels on first use.
func (k *Kernel) liveStore() *sample.LiveStore {
	if k.live == nil {
		k.live = sample.NewLiveStore()
	}
	return k.live
}

// OnPin registers a callback fired once per pinned live table at every
// batch start (inside Apply, on the session's worker goroutine — same
// confinement as OnResult), with the epoch the batch will read. The
// equivalence suite records these to replay each batch against a frozen
// copy of exactly the version the live run saw.
func (k *Kernel) OnPin(fn func(table string, epoch uint64)) { k.onPin = fn }

// PinnedEpochs reports the live-table snapshot epochs the kernel
// currently pins, keyed by table name (nil when it pins nothing) — the
// session log records them as checkpoint metadata. Same confinement as
// every kernel read: call only from the goroutine driving the kernel.
func (k *Kernel) PinnedEpochs() map[string]uint64 {
	if len(k.pins) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(k.pins))
	for _, lp := range k.pins {
		out[lp.table.Name()] = lp.pin.Snap.Epoch
	}
	return out
}

// pinFor returns the kernel's pin for t, taking the initial pin at the
// current snapshot on first use (object creation).
func (k *Kernel) pinFor(t *storage.Table) *livePin {
	for _, lp := range k.pins {
		if lp.table == t {
			return lp
		}
	}
	lp := &livePin{table: t, pin: k.liveStore().Pin(t)}
	k.pins = append(k.pins, lp)
	return lp
}

// repinLive advances every live pin to the newest published version and
// rebinds the affected objects. Called at batch start; between the old
// release and the new pin there is never a window where the kernel holds
// no reference, so a concurrent session's version can never be pruned
// out from under it.
func (k *Kernel) repinLive() {
	for _, lp := range k.pins {
		if lp.table.Snapshot().Epoch != lp.pin.Snap.Epoch {
			np := k.liveStore().Pin(lp.table)
			if np.Snap.Epoch != lp.pin.Snap.Epoch {
				k.rebindLiveObjects(lp.table, np)
				old := lp.pin
				lp.pin = np
				old.Release()
				k.counters.Add("live.repins", 1)
			} else {
				np.Release()
			}
		}
		if k.onPin != nil {
			k.onPin(lp.table.Name(), lp.pin.Snap.Epoch)
		}
	}
}

// rebindLiveObjects moves every object bound to t onto the new pinned
// version.
func (k *Kernel) rebindLiveObjects(t *storage.Table, pin *sample.Pinned) {
	for _, o := range k.objects {
		if o.live != t {
			continue
		}
		if err := o.rebindLive(pin); err != nil {
			k.counters.Add("live.rebind_errors", 1)
		}
	}
}

// ReleaseLive drops every live pin (session close/eviction). Pinned
// versions a concurrent session still reads stay alive through the
// store's refcounts — releasing here only removes this kernel's
// references. Idempotent.
func (k *Kernel) ReleaseLive() {
	for _, lp := range k.pins {
		lp.pin.Release()
	}
	k.pins = nil
}

// prefetchOnGrow hands an append-only hop to the prefetcher: a forward
// gesture whose warm frontier had run into the old end of the data gets
// the newly published tail warmed from that frontier (paper §2.6's
// extrapolation carried across snapshot versions) instead of paying cold
// misses when it resumes. oldLen is the tracked level's length before
// the rebind; limits are per-level indexes, matching the clamp the idle
// path uses.
func (o *Object) prefetchOnGrow(oldLen int) {
	if o.prefetcher == nil || !o.prefetcher.Enabled || o.hierarchy == nil || oldLen <= 0 {
		return
	}
	lvl, err := o.hierarchy.Level(o.lastLevel)
	if err != nil {
		return
	}
	if o.prefetcher.OnGrow(oldLen, lvl.Col.Len(), lvl.Tracker) {
		o.kernel.counters.Add("prefetch.grow_warms", 1)
	}
}

// liveSampleLevels reports the hierarchy depth live column objects use.
func (k *Kernel) liveSampleLevels() int {
	if !k.cfg.UseSamples {
		return 0
	}
	return k.cfg.SampleLevels
}

// rebindLive moves the object onto a newer pinned version of its live
// table. Append-only hops (same generation) keep all per-query state —
// running aggregates, group tables, join hash tables, trackers — and
// just extend the machinery over the new rows. A generation hop means
// retention compacted the table: row positions were rebased, so
// position-keyed query state resets (SetActions re-derives it from the
// new matrix), which is the documented compaction semantics. Sorted-view
// indexes rebuild either way (a sorted view of a longer column is a
// different permutation).
func (o *Object) rebindLive(pin *sample.Pinned) error {
	snap := pin.Snap
	o.matrix = snap.Matrix
	oldLen := 0
	if o.IsColumn() {
		k := o.kernel
		if lvl, err := o.hierarchy.Level(o.lastLevel); err == nil {
			oldLen = lvl.Col.Len()
		}
		shared, err := pin.Samples(o.colIdx, k.liveSampleLevels(), k.cfg.IO.BlockValues)
		if err != nil {
			return err
		}
		o.hierarchy.Rebind(shared)
	}
	o.indexes = index.NewRegistry()
	if snap.Gen != o.liveGen {
		o.liveGen = snap.Gen
		o.SetActions(o.actions)
	} else {
		o.prefetchOnGrow(oldLen)
		if o.grouper != nil {
			keyCol, errK := o.matrix.Column(o.actions.Group.KeyCol)
			valCol, errV := o.matrix.Column(o.actions.Group.ValCol)
			if errK == nil && errV == nil {
				o.grouper.Rebind(keyCol, valCol)
			}
		}
		if o.join != nil {
			if col, err := o.column(); err == nil {
				o.join.RebindSide(o.joinSide == JoinLeft, col)
			}
		}
	}
	rows, cols := o.matrix.NumRows(), o.matrix.NumCols()
	if o.IsColumn() {
		cols = 1
	}
	o.view.SetProps(touchos.DataProps{ObjectID: o.id, Rows: rows, Cols: cols})
	return nil
}
