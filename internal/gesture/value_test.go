package gesture

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"dbtouch/internal/touchos"
)

func TestGestureJSONRoundTrip(t *testing.T) {
	gestures := []Gesture{
		NewTap(3, 0.5),
		NewSlide(1, 0.25, 0.75, 1500*time.Millisecond),
		NewSlidePause(2, 2*time.Second, 0.4, 700*time.Millisecond),
		NewBackAndForth(1, time.Second, 3),
		NewZoom(4, 1.8),
		NewRotateQuarter(5),
		NewMove(6, 3.5, 7.25),
	}
	for _, g := range gestures {
		data, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("%s: %v", g.Kind, err)
		}
		var back Gesture
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: %v", g.Kind, err)
		}
		if !reflect.DeepEqual(g, back) {
			t.Fatalf("%s: decode(encode(g)) = %+v, want %+v (wire %s)", g.Kind, back, g, data)
		}
	}
}

func TestGestureValidate(t *testing.T) {
	if err := NewSlide(1, 0, 1, time.Second).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Gesture{
		{Kind: "teleport"},
		NewZoom(1, 0),
		NewZoom(1, -2),
		{Kind: KindSlide, Dur: -time.Second},
		// Trust-boundary bounds: one description cannot demand unbounded
		// synthesis (each digitizer period is one allocated event).
		NewSlide(1, 0, 1, MaxGestureDur+time.Second),
		NewSlidePause(1, MaxGestureDur-time.Minute, 0.5, 2*time.Minute),
		NewBackAndForth(1, time.Second, MaxPasses+1),
		NewBackAndForth(1, MaxGestureDur/2, 3),
		// PauseAt scales synthesized touch time: out of [0,1] it would
		// defeat the duration cap.
		NewSlidePause(1, time.Second, 1e8, 0),
		NewSlidePause(1, time.Second, -0.5, 0),
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Fatalf("%+v should be invalid", g)
		}
	}
}

func TestSynthesizeMatchesDirectSynth(t *testing.T) {
	frame := touchos.NewRect(2, 2, 2, 10)
	s := Synth{}
	start := 700 * time.Millisecond

	// A slide description must synthesize the exact stream the facade's
	// hand-written point math used to produce.
	g := NewSlide(1, 0.2, 0.9, time.Second)
	got, err := g.Synthesize(s, frame, start)
	if err != nil {
		t.Fatal(err)
	}
	centerX := frame.Origin.X + frame.Size.W/2
	yAt := func(frac float64) float64 {
		return frame.Origin.Y + 0.02 + frac*(frame.Size.H-2*0.02)
	}
	want := s.Slide(
		touchos.Point{X: centerX, Y: yAt(0.2)},
		touchos.Point{X: centerX, Y: yAt(0.9)},
		start, time.Second,
	)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("slide synthesis diverged: %d vs %d events", len(got), len(want))
	}

	// Zoom maps to a pinch about the frame center with spread H/3.
	zoomed, err := NewZoom(1, 2).Synthesize(s, frame, start)
	if err != nil {
		t.Fatal(err)
	}
	spread := frame.Size.H / 3
	wantZoom := s.Pinch(frame.Center(), spread, spread*2, start, 300*time.Millisecond)
	if !reflect.DeepEqual(zoomed, wantZoom) {
		t.Fatal("zoom synthesis diverged from direct pinch")
	}

	// Move synthesizes nothing: it is applied, not touched.
	events, err := NewMove(1, 5, 5).Synthesize(s, frame, start)
	if err != nil || events != nil {
		t.Fatalf("move synthesized %d events, err %v", len(events), err)
	}
}
