package storage

import "testing"

// Paired scalar-vs-SIMD benchmarks: the same dispatched entry points as
// the tracked kernel benchmarks, once with the SIMD flags forced off and
// once forced on, so BENCH_kernels.json carries an explicit speedup pair
// per kernel on hosts that have the assembly. On builds without SIMD
// (purego, -race, no AVX2) the simd variants are skipped rather than
// silently measuring the scalar path twice.

func benchPair(b *testing.B, run func(b *testing.B)) {
	b.Run("scalar", func(b *testing.B) {
		restore := setSIMD(false)
		defer restore()
		run(b)
	})
	b.Run("simd", func(b *testing.B) {
		if !simdAvailable() {
			b.Skip("no SIMD kernels in this build/host")
		}
		restore := setSIMD(true)
		defer restore()
		run(b)
	})
}

func BenchmarkSIMDSumRangeInt64(b *testing.B) {
	c := benchIntCol()
	benchPair(b, func(b *testing.B) {
		b.SetBytes(benchRows * 8)
		for i := 0; i < b.N; i++ {
			sinkI, _, _ = c.SumRangeInt64(0, benchRows)
		}
	})
}

func BenchmarkSIMDMinMaxRange(b *testing.B) {
	for _, typ := range []string{"int64", "float64"} {
		c := benchCols()[typ]
		b.Run(typ, func(b *testing.B) {
			benchPair(b, func(b *testing.B) {
				b.SetBytes(benchRows * 8)
				for i := 0; i < b.N; i++ {
					sinkF, sinkF2, _ = c.MinMaxRange(0, benchRows)
				}
			})
		})
	}
}

func BenchmarkSIMDFilterSumRange(b *testing.B) {
	for _, typ := range []string{"int64"} {
		c := benchCols()[typ]
		for _, sel := range selectivities {
			b.Run(typ+"/"+sel.label, func(b *testing.B) {
				benchPair(b, func(b *testing.B) {
					b.SetBytes(benchRows * 8)
					for i := 0; i < b.N; i++ {
						fa := c.FilterSumRange(0, benchRows, RangeLt, IntValue(sel.operand))
						sinkF = fa.Sum
						sinkN = fa.N
					}
				})
			})
		}
	}
}

func BenchmarkSIMDFilterAggRange(b *testing.B) {
	c := benchIntCol()
	for _, sel := range selectivities {
		b.Run("int64/"+sel.label, func(b *testing.B) {
			benchPair(b, func(b *testing.B) {
				b.SetBytes(benchRows * 8)
				for i := 0; i < b.N; i++ {
					fa := c.FilterAggRange(0, benchRows, RangeLt, IntValue(sel.operand))
					sinkF = fa.Sum
					sinkN = fa.N
				}
			})
		})
	}
}

func BenchmarkSIMDFilterRange(b *testing.B) {
	for _, typ := range []string{"int64", "float64"} {
		c := benchCols()[typ]
		for _, sel := range selectivities {
			b.Run(typ+"/"+sel.label, func(b *testing.B) {
				benchPair(b, func(b *testing.B) {
					b.SetBytes(benchRows * 8)
					var out []int32
					for i := 0; i < b.N; i++ {
						out = c.FilterRange(0, benchRows, RangeLt, IntValue(sel.operand), out[:0])
					}
					sinkN = len(out)
				})
			})
		}
	}
}
