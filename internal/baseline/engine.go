package baseline

import (
	"fmt"
	"sort"
	"time"

	"dbtouch/internal/iomodel"
	"dbtouch/internal/operator"
	"dbtouch/internal/storage"
	"dbtouch/internal/vclock"
)

// ResultSet is a fully materialized query answer — the monolithic
// contract of a traditional engine: nothing is visible until everything
// is computed.
type ResultSet struct {
	Columns []string
	Rows    [][]storage.Value
	// Elapsed is the virtual time the query consumed.
	Elapsed time.Duration
}

// Engine is the traditional column-store engine used as the contest
// baseline. It owns its own catalog view and per-column access trackers
// sharing the dbTouch cost model.
type Engine struct {
	clock    *vclock.Clock
	catalog  *storage.Catalog
	params   iomodel.Params
	trackers map[string]*iomodel.Tracker
	queries  int64
}

// New returns an engine on the given clock and cost parameters.
func New(clock *vclock.Clock, params iomodel.Params) *Engine {
	return &Engine{
		clock:    clock,
		catalog:  storage.NewCatalog(),
		params:   params,
		trackers: make(map[string]*iomodel.Tracker),
	}
}

// Register loads a matrix into the engine's catalog. Row-major matrixes
// are accepted; a real column store would convert, and so do we (charged
// as load time, not query time — both systems in the contest start
// loaded).
func (e *Engine) Register(m *storage.Matrix) error {
	cm, err := m.ToLayout(storage.ColumnMajor)
	if err != nil {
		return err
	}
	e.catalog.Register(cm)
	return nil
}

// Queries reports how many statements have executed.
func (e *Engine) Queries() int64 { return e.queries }

// TotalStats aggregates access statistics across all column trackers.
func (e *Engine) TotalStats() iomodel.Stats {
	var total iomodel.Stats
	for _, t := range e.trackers {
		s := t.Stats()
		total.ColdFetches += s.ColdFetches
		total.WarmHits += s.WarmHits
		total.ValuesRead += s.ValuesRead
		total.BytesRead += s.BytesRead
		total.Evictions += s.Evictions
	}
	return total
}

// tracker returns the per-column tracker for table.col.
func (e *Engine) tracker(table, col string) *iomodel.Tracker {
	key := table + "." + col
	t, ok := e.trackers[key]
	if !ok {
		t = iomodel.New(e.clock, e.params, nil)
		e.trackers[key] = t
	}
	return t
}

// Query parses and executes sql, returning the materialized result.
func (e *Engine) Query(sql string) (*ResultSet, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.Execute(stmt)
}

// Execute runs a parsed statement.
func (e *Engine) Execute(stmt *SelectStmt) (*ResultSet, error) {
	e.queries++
	start := e.clock.Now()
	left, err := e.catalog.Get(stmt.From)
	if err != nil {
		return nil, err
	}

	// Stage 1: filter the FROM table with a full scan over the predicate
	// columns (a traditional engine has full control of data flow and
	// consumes everything).
	leftRows, err := e.filterScan(left, stmt.From, stmt.Where)
	if err != nil {
		return nil, err
	}

	var rs *ResultSet
	if stmt.Join != nil {
		rs, err = e.executeJoin(stmt, left, leftRows)
	} else if stmt.GroupBy != nil {
		rs, err = e.executeGroupBy(stmt, left, leftRows)
	} else if len(stmt.Items) > 0 && stmt.Items[0].IsAgg {
		rs, err = e.executeAggregate(stmt, left, leftRows)
	} else {
		rs, err = e.executeProject(stmt, left, leftRows)
	}
	if err != nil {
		return nil, err
	}
	e.orderAndLimit(stmt, rs)
	rs.Elapsed = e.clock.Now() - start
	return rs, nil
}

// filterScan evaluates WHERE conjuncts for the named table with full
// column scans and returns the passing row ids. Conditions qualified with
// another table name are ignored (join conditions handle those).
func (e *Engine) filterScan(m *storage.Matrix, table string, conds []Condition) ([]int, error) {
	n := m.NumRows()
	var mine []Condition
	for _, c := range conds {
		if c.Col.Table == "" || c.Col.Table == table {
			mine = append(mine, c)
		}
	}
	if len(mine) == 0 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	type boundCond struct {
		col     *storage.Column
		tracker *iomodel.Tracker
		op      operator.CmpOp
		operand storage.Value
	}
	bound := make([]boundCond, len(mine))
	for i, c := range mine {
		idx := m.ColumnIndex(c.Col.Column)
		if idx < 0 {
			return nil, fmt.Errorf("baseline: table %q has no column %q", table, c.Col.Column)
		}
		col, err := m.Column(idx)
		if err != nil {
			return nil, err
		}
		bound[i] = boundCond{col: col, tracker: e.tracker(table, c.Col.Column), op: c.Op, operand: c.Operand}
	}
	var out []int
	for r := 0; r < n; r++ {
		pass := true
		for _, b := range bound {
			b.tracker.Access(r)
			if !b.op.Apply(b.col.Value(r), b.operand) {
				pass = false
				break
			}
		}
		if pass {
			out = append(out, r)
		}
	}
	return out, nil
}

// executeProject materializes SELECT cols / SELECT *.
func (e *Engine) executeProject(stmt *SelectStmt, m *storage.Matrix, rows []int) (*ResultSet, error) {
	var cols []int
	var names []string
	if stmt.Star {
		for i, cm := range m.Schema() {
			cols = append(cols, i)
			names = append(names, cm.Name)
		}
	} else {
		for _, it := range stmt.Items {
			if it.IsAgg {
				return nil, fmt.Errorf("baseline: mixing aggregates and plain columns requires GROUP BY")
			}
			idx := m.ColumnIndex(it.Col.Column)
			if idx < 0 {
				return nil, fmt.Errorf("baseline: no column %q in %q", it.Col.Column, stmt.From)
			}
			cols = append(cols, idx)
			names = append(names, it.Name())
		}
	}
	rs := &ResultSet{Columns: names}
	limit := stmt.Limit
	for _, r := range rows {
		if limit >= 0 && len(rs.Rows) >= limit && stmt.OrderBy == nil {
			break
		}
		row := make([]storage.Value, len(cols))
		for i, c := range cols {
			e.tracker(stmt.From, m.Schema()[c].Name).Access(r)
			v, err := m.At(r, c)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		rs.Rows = append(rs.Rows, row)
	}
	return rs, nil
}

// executeAggregate computes grand aggregates over the passing rows.
func (e *Engine) executeAggregate(stmt *SelectStmt, m *storage.Matrix, rows []int) (*ResultSet, error) {
	aggs := make([]*operator.RunningAgg, len(stmt.Items))
	cols := make([]int, len(stmt.Items))
	names := make([]string, len(stmt.Items))
	for i, it := range stmt.Items {
		if !it.IsAgg {
			return nil, fmt.Errorf("baseline: plain column %q without GROUP BY", it.Name())
		}
		aggs[i] = operator.NewRunningAgg(it.Agg)
		names[i] = it.Name()
		if it.Star {
			cols[i] = -1
			continue
		}
		idx := m.ColumnIndex(it.Col.Column)
		if idx < 0 {
			return nil, fmt.Errorf("baseline: no column %q in %q", it.Col.Column, stmt.From)
		}
		cols[i] = idx
	}
	for _, r := range rows {
		for i, c := range cols {
			if c < 0 {
				aggs[i].Add(1)
				continue
			}
			e.tracker(stmt.From, m.Schema()[c].Name).Access(r)
			col, err := m.Column(c)
			if err != nil {
				return nil, err
			}
			aggs[i].Add(col.Float(r))
		}
	}
	row := make([]storage.Value, len(aggs))
	for i, a := range aggs {
		row[i] = storage.FloatValue(a.Value())
	}
	return &ResultSet{Columns: names, Rows: [][]storage.Value{row}}, nil
}

// executeGroupBy computes grouped aggregates.
func (e *Engine) executeGroupBy(stmt *SelectStmt, m *storage.Matrix, rows []int) (*ResultSet, error) {
	keyIdx := m.ColumnIndex(stmt.GroupBy.Column)
	if keyIdx < 0 {
		return nil, fmt.Errorf("baseline: no group column %q in %q", stmt.GroupBy.Column, stmt.From)
	}
	keyCol, err := m.Column(keyIdx)
	if err != nil {
		return nil, err
	}
	keyTracker := e.tracker(stmt.From, stmt.GroupBy.Column)

	type aggSpec struct {
		col     *storage.Column
		tracker *iomodel.Tracker
		kind    operator.AggKind
		star    bool
	}
	var specs []aggSpec
	names := []string{stmt.GroupBy.Column}
	keyOut := -1
	for i, it := range stmt.Items {
		if !it.IsAgg {
			if it.Col.Column != stmt.GroupBy.Column {
				return nil, fmt.Errorf("baseline: non-grouped column %q in GROUP BY query", it.Col.Column)
			}
			keyOut = i
			continue
		}
		spec := aggSpec{kind: it.Agg, star: it.Star}
		if !it.Star {
			idx := m.ColumnIndex(it.Col.Column)
			if idx < 0 {
				return nil, fmt.Errorf("baseline: no column %q in %q", it.Col.Column, stmt.From)
			}
			c, err := m.Column(idx)
			if err != nil {
				return nil, err
			}
			spec.col = c
			spec.tracker = e.tracker(stmt.From, it.Col.Column)
		}
		specs = append(specs, spec)
		names = append(names, it.Name())
	}
	_ = keyOut
	groups := make(map[string][]*operator.RunningAgg)
	keyVals := make(map[string]storage.Value)
	for _, r := range rows {
		keyTracker.Access(r)
		kv := keyCol.Value(r)
		key := kv.String()
		aggs, ok := groups[key]
		if !ok {
			aggs = make([]*operator.RunningAgg, len(specs))
			for i, s := range specs {
				aggs[i] = operator.NewRunningAgg(s.kind)
			}
			groups[key] = aggs
			keyVals[key] = kv
		}
		for i, s := range specs {
			if s.star {
				aggs[i].Add(1)
				continue
			}
			s.tracker.Access(r)
			aggs[i].Add(s.col.Float(r))
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rs := &ResultSet{Columns: names}
	for _, k := range keys {
		row := []storage.Value{keyVals[k]}
		for _, a := range groups[k] {
			row = append(row, storage.FloatValue(a.Value()))
		}
		rs.Rows = append(rs.Rows, row)
	}
	return rs, nil
}

// executeJoin runs the blocking hash join: build the full right side,
// probe with the filtered left rows, then project/aggregate.
func (e *Engine) executeJoin(stmt *SelectStmt, left *storage.Matrix, leftRows []int) (*ResultSet, error) {
	right, err := e.catalog.Get(stmt.Join.Table)
	if err != nil {
		return nil, err
	}
	rightRows, err := e.filterScan(right, stmt.Join.Table, stmt.Where)
	if err != nil {
		return nil, err
	}
	leftIdx := left.ColumnIndex(stmt.Join.LeftCol.Column)
	rightIdx := right.ColumnIndex(stmt.Join.RightCol.Column)
	if leftIdx < 0 || rightIdx < 0 {
		return nil, fmt.Errorf("baseline: join columns %s/%s not found", stmt.Join.LeftCol, stmt.Join.RightCol)
	}
	leftCol, err := left.Column(leftIdx)
	if err != nil {
		return nil, err
	}
	rightCol, err := right.Column(rightIdx)
	if err != nil {
		return nil, err
	}
	// Blocking build over the (filtered) right side.
	buildTracker := e.tracker(stmt.Join.Table, stmt.Join.RightCol.Column)
	table := make(map[float64][]int)
	for _, r := range rightRows {
		buildTracker.Access(r)
		table[rightCol.Float(r)] = append(table[rightCol.Float(r)], r)
	}
	probeTracker := e.tracker(stmt.From, stmt.Join.LeftCol.Column)

	// COUNT(*) fast path; otherwise project joined pairs.
	countOnly := len(stmt.Items) == 1 && stmt.Items[0].IsAgg && stmt.Items[0].Star && stmt.Items[0].Agg == operator.Count
	var matches int64
	rs := &ResultSet{}
	if countOnly {
		rs.Columns = []string{stmt.Items[0].Name()}
	} else {
		rs.Columns = []string{stmt.From + ".row", stmt.Join.Table + ".row", "key"}
	}
	limit := stmt.Limit
	for _, l := range leftRows {
		probeTracker.Access(l)
		key := leftCol.Float(l)
		for _, r := range table[key] {
			matches++
			if countOnly {
				continue
			}
			if limit >= 0 && len(rs.Rows) >= limit {
				continue
			}
			rs.Rows = append(rs.Rows, []storage.Value{
				storage.IntValue(int64(l)), storage.IntValue(int64(r)), storage.FloatValue(key),
			})
		}
	}
	if countOnly {
		rs.Rows = [][]storage.Value{{storage.FloatValue(float64(matches))}}
	}
	return rs, nil
}

// orderAndLimit applies ORDER BY and LIMIT to a materialized result.
func (e *Engine) orderAndLimit(stmt *SelectStmt, rs *ResultSet) {
	if stmt.OrderBy != nil {
		col := -1
		for i, name := range rs.Columns {
			if name == stmt.OrderBy.Col.Column || name == stmt.OrderBy.Col.String() {
				col = i
				break
			}
		}
		if col >= 0 {
			desc := stmt.OrderBy.Desc
			sort.SliceStable(rs.Rows, func(a, b int) bool {
				c := rs.Rows[a][col].Compare(rs.Rows[b][col])
				if desc {
					return c > 0
				}
				return c < 0
			})
		}
	}
	if stmt.Limit >= 0 && len(rs.Rows) > stmt.Limit {
		rs.Rows = rs.Rows[:stmt.Limit]
	}
}
