package dbtouch

import (
	"fmt"
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/operator"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
)

// Object is the handle to one on-screen data object. Its methods both
// configure the touch actions and synthesize the gestures of Figure 1.
type Object struct {
	db    *DB
	inner *core.Object
}

// ID returns the kernel object id.
func (o *Object) ID() int { return o.inner.ID() }

// Rows reports the tuple count of the backing data.
func (o *Object) Rows() int { return o.inner.Rows() }

// Frame reports the object's on-screen rectangle (centimeters).
func (o *Object) Frame() (x, y, w, h float64) {
	f := o.inner.View().Frame()
	return f.Origin.X, f.Origin.Y, f.Size.W, f.Size.H
}

// Inner exposes the kernel object (advanced use).
func (o *Object) Inner() *core.Object { return o.inner }

// SetActions replaces the full touch configuration.
func (o *Object) SetActions(a Actions) { o.inner.SetActions(a) }

// Actions returns the current touch configuration.
func (o *Object) Actions() Actions { return o.inner.Actions() }

// Scan configures touches to reveal raw values.
func (o *Object) Scan() *Object {
	a := o.inner.Actions()
	a.Mode = core.ModeScan
	o.inner.SetActions(a)
	return o
}

// Aggregate configures touches to maintain a running aggregate.
func (o *Object) Aggregate(kind AggKind) *Object {
	a := o.inner.Actions()
	a.Mode = core.ModeAggregate
	a.Agg = kind
	o.inner.SetActions(a)
	return o
}

// Summarize configures interactive summaries: each touch aggregates the
// 2k+1 entries around the touched tuple.
func (o *Object) Summarize(kind AggKind, k int) *Object {
	a := o.inner.Actions()
	a.Mode = core.ModeSummary
	a.Agg = kind
	a.SummaryK = k
	o.inner.SetActions(a)
	return o
}

// Where adds a WHERE conjunct on the named column of the object's
// backing table. op is one of = <> < <= > >=.
func (o *Object) Where(column, op string, operand any) error {
	m := o.inner.Matrix()
	idx := m.ColumnIndex(column)
	if idx < 0 {
		return fmt.Errorf("dbtouch: no column %q", column)
	}
	cmp, err := parseOp(op)
	if err != nil {
		return err
	}
	a := o.inner.Actions()
	a.Filters = append(a.Filters, operator.Predicate{Col: idx, Op: cmp, Operand: toValue(operand)})
	o.inner.SetActions(a)
	return nil
}

// ValueOrder toggles index-backed value-order slides (slide position maps
// to rank, not storage position).
func (o *Object) ValueOrder(on bool) *Object {
	a := o.inner.Actions()
	a.ValueOrder = on
	o.inner.SetActions(a)
	return o
}

// GroupBy configures incremental grouping of valColumn by keyColumn.
func (o *Object) GroupBy(keyColumn, valColumn string, kind AggKind) error {
	m := o.inner.Matrix()
	k, v := m.ColumnIndex(keyColumn), m.ColumnIndex(valColumn)
	if k < 0 || v < 0 {
		return fmt.Errorf("dbtouch: group columns %q/%q not found", keyColumn, valColumn)
	}
	a := o.inner.Actions()
	a.Group = &core.GroupSpec{KeyCol: k, ValCol: v, Agg: kind}
	o.inner.SetActions(a)
	return nil
}

// JoinWith wires a symmetric (non-blocking) equi-join between this
// object's column and other's column; touches on either object stream
// matches out.
func (o *Object) JoinWith(other *Object) {
	a := o.inner.Actions()
	a.Join = &core.JoinSpec{OtherObject: other.ID(), Side: core.JoinLeft}
	o.inner.SetActions(a)
}

// centerX returns the object's horizontal center in screen coordinates.
func (o *Object) centerX() float64 {
	f := o.inner.View().Frame()
	return f.Origin.X + f.Size.W/2
}

// Slide sweeps a single finger top-to-bottom over the object in dur and
// returns the results the gesture produced.
func (o *Object) Slide(dur time.Duration) []Result {
	return o.SlideRange(0, 1, dur)
}

// SlideUp sweeps bottom-to-top.
func (o *Object) SlideUp(dur time.Duration) []Result {
	return o.SlideRange(1, 0, dur)
}

// SlideRange sweeps between two fractional heights of the object (0 =
// top, 1 = bottom) in dur.
func (o *Object) SlideRange(fromFrac, toFrac float64, dur time.Duration) []Result {
	f := o.inner.View().Frame()
	const inset = 0.02
	yAt := func(frac float64) float64 {
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return f.Origin.Y + inset + frac*(f.Size.H-2*inset)
	}
	start := o.db.gestureStart()
	events := o.db.synth.Slide(
		touchos.Point{X: o.centerX(), Y: yAt(fromFrac)},
		touchos.Point{X: o.centerX(), Y: yAt(toFrac)},
		start, dur,
	)
	return o.db.Apply(events)
}

// SlideWithPause sweeps top-to-bottom pausing at pauseFrac for pauseDur —
// the prefetching scenario of §2.6.
func (o *Object) SlideWithPause(dur time.Duration, pauseFrac float64, pauseDur time.Duration) []Result {
	f := o.inner.View().Frame()
	start := o.db.gestureStart()
	events := o.db.synth.PauseResume(
		touchos.Point{X: o.centerX(), Y: f.Origin.Y + 0.02},
		touchos.Point{X: o.centerX(), Y: f.Origin.Y + f.Size.H - 0.02},
		start, dur, pauseFrac, pauseDur,
	)
	return o.db.Apply(events)
}

// SlideBackAndForth sweeps down and back up `passes` times, legDur per
// leg — the revisit scenario caching exploits.
func (o *Object) SlideBackAndForth(legDur time.Duration, passes int) []Result {
	f := o.inner.View().Frame()
	start := o.db.gestureStart()
	events := o.db.synth.BackAndForth(
		touchos.Point{X: o.centerX(), Y: f.Origin.Y + 0.02},
		touchos.Point{X: o.centerX(), Y: f.Origin.Y + f.Size.H - 0.02},
		start, legDur, passes,
	)
	return o.db.Apply(events)
}

// Tap touches the object at the given fractional height once.
func (o *Object) Tap(frac float64) []Result {
	f := o.inner.View().Frame()
	start := o.db.gestureStart()
	events := o.db.synth.Tap(touchos.Point{
		X: o.centerX(),
		Y: f.Origin.Y + 0.02 + frac*(f.Size.H-0.04),
	}, start)
	return o.db.Apply(events)
}

// MoveTo repositions the object's top-left corner (the pan gesture of
// §2.8, applied directly).
func (o *Object) MoveTo(x, y float64) {
	f := o.inner.View().Frame()
	f.Origin = touchos.Point{X: x, Y: y}
	o.inner.View().SetFrame(f)
}

// ZoomIn grows the object by factor (> 1) with a pinch gesture, raising
// the granularity a slide can address.
func (o *Object) ZoomIn(factor float64) {
	o.pinch(factor)
}

// ZoomOut shrinks the object by factor (> 1).
func (o *Object) ZoomOut(factor float64) {
	if factor > 0 {
		o.pinch(1 / factor)
	}
}

func (o *Object) pinch(scale float64) {
	if scale <= 0 {
		return
	}
	f := o.inner.View().Frame()
	center := f.Center()
	spread0 := f.Size.H / 3
	start := o.db.gestureStart()
	events := o.db.synth.Pinch(center, spread0, spread0*scale, start, 300*time.Millisecond)
	o.db.Apply(events)
}

// RotateQuarter applies a two-finger quarter-turn rotation: the view
// rotates, and multi-column objects start an incremental row↔column
// layout conversion with a sample-first preview.
func (o *Object) RotateQuarter() {
	f := o.inner.View().Frame()
	radius := f.Size.W / 2
	if f.Size.H < f.Size.W {
		radius = f.Size.H / 2
	}
	if radius <= 0.2 {
		radius = 0.2
	}
	start := o.db.gestureStart()
	events := o.db.synth.Rotate(f.Center(), radius*0.9, 1.65, start, 400*time.Millisecond)
	o.db.Apply(events)
}

// Converting reports whether a layout conversion is running, with its
// progress in [0,1].
func (o *Object) Converting() (bool, float64) { return o.inner.Converting() }

// PinHotRegion materializes the most revisited region of this column as
// its own data object at (x, y, w, h) — cache-to-sample promotion
// (paper §2.6): future queries at this granularity feed from the copy.
// Requires the gesture-aware cache policy (the default).
func (o *Object) PinHotRegion(x, y, w, h float64) (*Object, error) {
	inner, err := o.db.kernel.PromoteHotRegion(o.inner, touchos.NewRect(x, y, w, h))
	if err != nil {
		return nil, err
	}
	return &Object{db: o.db, inner: inner}, nil
}

// parseOp maps SQL comparison syntax to operator.CmpOp.
func parseOp(op string) (operator.CmpOp, error) {
	switch op {
	case "=", "==":
		return operator.Eq, nil
	case "<>", "!=":
		return operator.Ne, nil
	case "<":
		return operator.Lt, nil
	case "<=":
		return operator.Le, nil
	case ">":
		return operator.Gt, nil
	case ">=":
		return operator.Ge, nil
	default:
		return 0, fmt.Errorf("dbtouch: unknown comparison %q", op)
	}
}

// toValue coerces a Go value into a storage.Value.
func toValue(v any) storage.Value {
	switch x := v.(type) {
	case int:
		return storage.IntValue(int64(x))
	case int64:
		return storage.IntValue(x)
	case float64:
		return storage.FloatValue(x)
	case bool:
		return storage.BoolValue(x)
	case string:
		return storage.StringValue(x)
	default:
		return storage.StringValue(fmt.Sprint(v))
	}
}
