package experiments

import (
	"fmt"
	"time"

	"dbtouch/internal/datagen"
	"dbtouch/internal/iomodel"
	"dbtouch/internal/layout"
	"dbtouch/internal/metrics"
	"dbtouch/internal/operator"
	"dbtouch/internal/remote"
	"dbtouch/internal/storage"
	"dbtouch/internal/vclock"
)

// RotateLayout (Ext-5) measures §2.8: converting a row-major table to
// column-major in one shot versus the sample-first incremental strategy,
// reporting time-to-first-queryable and time-to-complete.
func RotateLayout(s Scale) *metrics.Table {
	t := &metrics.Table{Header: []string{
		"strategy", "first-queryable", "complete", "preview-rows",
	}}
	build := func() *storage.Matrix {
		rows := s.TableRows
		m := storage.NewRowMajorMatrix("wide", []storage.ColumnMeta{
			{Name: "a", Type: storage.Int64}, {Name: "b", Type: storage.Int64},
			{Name: "c", Type: storage.Float64}, {Name: "d", Type: storage.Float64},
			{Name: "e", Type: storage.Int64}, {Name: "f", Type: storage.Int64},
			{Name: "g", Type: storage.Float64}, {Name: "h", Type: storage.Float64},
		})
		vals := make([]storage.Value, 8)
		for r := 0; r < rows; r++ {
			for c := range vals {
				if c%2 == 0 {
					vals[c] = storage.IntValue(int64(r * (c + 1)))
				} else {
					vals[c] = storage.FloatValue(float64(r) / float64(c+1))
				}
			}
			if err := m.AppendRow(vals); err != nil {
				panic(err)
			}
		}
		return m
	}

	// One-shot full conversion.
	clock := vclock.New()
	conv, err := layout.NewConversion(build(), clock, 4096)
	if err != nil {
		panic(err)
	}
	if err := conv.Run(); err != nil {
		panic(err)
	}
	full := clock.Now()
	t.AddRow("full-copy", full.String(), full.String(), "0")

	// Sample-first: preview queryable immediately, completion continues
	// incrementally.
	clock = vclock.New()
	conv, err = layout.NewConversion(build(), clock, 4096)
	if err != nil {
		panic(err)
	}
	preview, err := conv.SampleFirst(256)
	if err != nil {
		panic(err)
	}
	firstQueryable := clock.Now()
	if err := conv.Run(); err != nil {
		panic(err)
	}
	t.AddRow("sample-first", firstQueryable.String(), clock.Now().String(),
		fmt.Sprint(preview.NumRows()))
	return t
}

// JoinNonBlocking (Ext-6) measures §2.9 "Joins": the symmetric
// (non-blocking) hash join streams its first match as soon as touched
// tuples from both sides collide, while the blocking build-then-probe
// join answers nothing until the whole build side is consumed.
func JoinNonBlocking(s Scale) *metrics.Table {
	t := &metrics.Table{Header: []string{
		"join", "first-match", "complete", "matches", "tuples-read",
	}}
	n := s.Rows / 10
	if n < 1000 {
		n = 1000
	}
	left := storage.NewIntColumn("l", datagen.Ints(datagen.Spec{Dist: datagen.Uniform, N: n, Seed: 7, Min: 0, Max: float64(n / 4)}))
	right := storage.NewIntColumn("r", datagen.Ints(datagen.Spec{Dist: datagen.Uniform, N: n, Seed: 8, Min: 0, Max: float64(n / 4)}))
	params := heavyIO()

	// Symmetric: alternate pushes from both sides, as interleaved slide
	// gestures would deliver them.
	clock := vclock.New()
	lt := iomodel.New(clock, params, nil)
	rt := iomodel.New(clock, params, nil)
	sym := operator.NewSymmetricHashJoin(left, right)
	var symFirst time.Duration
	for i := 0; i < n; i++ {
		if len(sym.PushLeft(i, lt)) > 0 && symFirst == 0 {
			symFirst = clock.Now()
		}
		if len(sym.PushRight(i, rt)) > 0 && symFirst == 0 {
			symFirst = clock.Now()
		}
	}
	t.AddRow("symmetric", symFirst.String(), clock.Now().String(),
		fmt.Sprint(sym.Matches()),
		fmt.Sprint(lt.Stats().ValuesRead+rt.Stats().ValuesRead))

	// Blocking: build the whole right side first.
	clock = vclock.New()
	lt = iomodel.New(clock, params, nil)
	rt = iomodel.New(clock, params, nil)
	blk := operator.NewBlockingHashJoin()
	blk.Build(right, rt)
	var blkFirst time.Duration
	var matches int64
	for i := 0; i < n; i++ {
		hits := blk.Probe(left, i, lt)
		matches += int64(len(hits))
		if len(hits) > 0 && blkFirst == 0 {
			blkFirst = clock.Now()
		}
	}
	t.AddRow("blocking", blkFirst.String(), clock.Now().String(),
		fmt.Sprint(matches),
		fmt.Sprint(lt.Stats().ValuesRead+rt.Stats().ValuesRead))
	return t
}

// IndexedSlide (Ext-10) measures §2.6 "Indexing": value-order slides pay
// a lazy index build on first use, then serve rank touches cheaply; the
// table also shows a value-range lookup against the full-scan
// alternative.
func IndexedSlide(s Scale) *metrics.Table {
	t := &metrics.Table{Header: []string{"operation", "virtual-time", "values-read"}}
	n := s.Rows / 10
	if n < 1000 {
		n = 1000
	}
	col := storage.NewIntColumn("v", datagen.Ints(datagen.Spec{Dist: datagen.Uniform, N: n, Seed: 11, Min: 0, Max: 1e6}))
	params := heavyIO()

	measure := func(name string, f func(tr *iomodel.Tracker)) {
		clock := vclock.New()
		tr := iomodel.New(clock, params, nil)
		before := tr.Stats().ValuesRead
		f(tr)
		t.AddRow(name, clock.Now().String(), fmt.Sprint(tr.Stats().ValuesRead-before))
	}

	idx := indexOver(col)
	measure("index-build(lazy,first slide)", func(tr *iomodel.Tracker) { idx.Build(tr) })
	measure("value-order-slide(60 touches)", func(tr *iomodel.Tracker) {
		for i := 0; i < 60; i++ {
			rank := i * (n - 1) / 59
			if _, _, err := idx.ValueAtRank(rank, tr); err != nil {
				panic(err)
			}
		}
	})
	measure("index-range-lookup", func(tr *iomodel.Tracker) {
		if _, err := idx.Range(1000, 2000, tr); err != nil {
			panic(err)
		}
	})
	measure("fullscan-range-lookup", func(tr *iomodel.Tracker) {
		for i := 0; i < n; i++ {
			tr.Access(i)
			v := col.Float(i)
			_ = v >= 1000 && v <= 2000
		}
	})
	return t
}

// RemoteProcessing (Ext-8) measures §4 "Remote Processing": the device
// answers every touch locally from its small sample and ships batched
// detail requests to the server; per-touch round trips are the strawman.
func RemoteProcessing(s Scale) *metrics.Table {
	t := &metrics.Table{Header: []string{
		"batching", "round-trips", "bytes-moved", "local-answers", "refinements", "mean-refine-delay",
	}}
	base := storage.NewIntColumn("v", s.columnData())
	for _, batch := range []time.Duration{150 * time.Millisecond, 0} {
		clock := vclock.New()
		server, err := remote.NewServer(base, 14, iomodel.DefaultParams())
		if err != nil {
			panic(err)
		}
		dev, err := remote.NewDevice(clock, server, 8, 4, iomodel.DefaultParams())
		if err != nil {
			panic(err)
		}
		dev.BatchWindow = batch
		var refineDelay time.Duration
		var refined int64
		touches := 100
		for i := 0; i < touches; i++ {
			baseID := i * (s.Rows - 1) / touches
			dev.Touch(baseID, 2) // ask for fine detail (server level 2)
			clock.Advance(50 * time.Millisecond)
			for _, r := range dev.Poll() {
				refineDelay += r.ArrivesAt - r.RequestedAt
				refined++
			}
		}
		dev.Flush()
		clock.Advance(2 * time.Second)
		for _, r := range dev.Poll() {
			refineDelay += r.ArrivesAt - r.RequestedAt
			refined++
		}
		st := dev.Stats()
		name := "batched-150ms"
		if batch == 0 {
			name = "per-touch"
		}
		mean := time.Duration(0)
		if st.Refinements > 0 {
			mean = refineDelay / time.Duration(maxI64(refined, 1))
		}
		t.AddRow(name,
			fmt.Sprint(st.RoundTrips),
			fmt.Sprint(st.BytesMoved),
			fmt.Sprint(st.LocalAnswers),
			fmt.Sprint(st.Refinements),
			mean.String(),
		)
	}
	return t
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
