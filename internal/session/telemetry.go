package session

import (
	"time"

	"dbtouch/internal/storage"
)

// ftdcNames is the flight-recorder metric schema, fixed so every capture
// chunk decodes against one column identity. Order matters: FTDCSample
// returns values positionally.
var ftdcNames = []string{
	"ts_unix_ns",
	"sessions_live",
	"sessions_max",
	"evictions",
	"workers",
	"sessions_parked",
	"sessions_runnable",
	"sessions_running",
	"steals",
	"dispatches",
	"queued_batches",
	"max_queued_batches",
	"live_tables",
	"append_epochs",
	"live_rows",
	"retention_gens",
	"kernel_bytes",
	"logged_requests",
	"log_errors",
	"log_compactions",
	"log_appended_bytes",
	"resumes",
	"replayed_requests",
}

// FTDCSample captures the manager's gauge vector for the flight
// recorder: everything Stats() reports plus the storage-layer cumulative
// counters, as int64s so the capture is exact. Unlike Stats it builds no
// per-session rows — at 10k sessions a one-second tick must not allocate
// 10k structs — it only folds each session's scheduling state into the
// parked/runnable/running partition counts. Counters (steals,
// dispatches, append_epochs, kernel_bytes) are cumulative; the capture
// reader differentiates them into rates.
func (m *Manager) FTDCSample() (names []string, values []int64) {
	v := make([]int64, len(ftdcNames))
	v[0] = time.Now().UnixNano()

	m.mu.Lock()
	v[1] = int64(len(m.sessions))
	v[2] = int64(m.maxSessions)
	v[3] = m.evictions
	if m.sched != nil {
		v[4] = int64(len(m.sched.workers))
		v[8] = m.sched.steals.Load()
		v[9] = m.sched.dispatches.Load()
	}
	live := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		live = append(live, s)
	}
	m.mu.Unlock()

	for _, s := range live {
		switch s.State() {
		case StateParked:
			v[5]++
		case StateRunnable:
			v[6]++
		case StateRunning:
			v[7]++
		}
	}
	v[10] = m.queuedBatches.Load()
	v[11] = m.maxQueuedBatches.Load()

	for _, t := range m.catalog.LiveTables() {
		snap := t.Snapshot()
		v[12]++
		v[13] += int64(snap.Epoch)
		v[14] += int64(snap.Rows)
		v[15] += int64(snap.Gen)
	}
	v[16] = storage.KernelBytes()
	// Durability gauges stay zero when no session-log store is attached,
	// keeping the schema (and so chunk column identity) fixed either way.
	if d := m.durability(); d != nil {
		st := d.store.Stats()
		v[17] = d.logged.Load()
		v[18] = d.logErrs.Load()
		v[19] = st.Compactions
		v[20] = st.AppendedBytes
		v[21] = d.resumes.Load()
		v[22] = d.replayed.Load()
	}
	return ftdcNames, v
}
