package session

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/gesture"
	"dbtouch/internal/protocol"
	"dbtouch/internal/storage"
)

// handleManager builds a manager with one registered 100k-row table "t"
// (int column "v").
func handleManager(t *testing.T) *Manager {
	t.Helper()
	m := NewManager(core.Config{})
	vals := make([]int64, 100000)
	for i := range vals {
		vals[i] = int64(i)
	}
	matrix, err := storage.NewMatrix("t", storage.NewIntColumn("v", vals))
	if err != nil {
		t.Fatal(err)
	}
	m.Catalog().Register(matrix)
	return m
}

func mustOK(t *testing.T, m *Manager, req protocol.Request) protocol.Response {
	t.Helper()
	req.V = protocol.Version
	resp := m.HandleRequest(req)
	if !resp.OK {
		t.Fatalf("%s failed: %s", req.Op, resp.Error)
	}
	return resp
}

func mustFail(t *testing.T, m *Manager, req protocol.Request, wantSub string) {
	t.Helper()
	if req.V == 0 {
		req.V = protocol.Version
	}
	resp := m.HandleRequest(req)
	if resp.OK {
		t.Fatalf("%s should have failed", req.Op)
	}
	if !strings.Contains(resp.Error, wantSub) {
		t.Fatalf("%s error = %q, want substring %q", req.Op, resp.Error, wantSub)
	}
}

func TestHandleRequestLifecycle(t *testing.T) {
	m := handleManager(t)
	defer m.Close()

	mustOK(t, m, protocol.Request{Op: protocol.OpOpen, Session: "u1"})
	mustFail(t, m, protocol.Request{Op: protocol.OpOpen, Session: "u1"}, "already exists")
	mustFail(t, m, protocol.Request{Op: protocol.OpOpen}, "missing session")

	created := mustOK(t, m, protocol.Request{
		Op: protocol.OpCreate, Session: "u1", Object: "col",
		Create: &protocol.CreateSpec{Table: "t", Column: "v", X: 2, Y: 2, W: 2, H: 10},
	})
	if created.ObjectID == 0 {
		t.Fatal("create returned no object id")
	}
	k := 5
	mustOK(t, m, protocol.Request{
		Op: protocol.OpConfigure, Session: "u1", Object: "col",
		Actions: &protocol.ActionsSpec{Mode: "summary", Agg: "avg", K: &k},
	})

	g := gesture.NewSlide(0, 0, 1, time.Second)
	performed := mustOK(t, m, protocol.Request{Op: protocol.OpPerform, Session: "u1", Object: "col", Gesture: &g})
	if len(performed.Results) == 0 {
		t.Fatal("perform produced no frames")
	}
	if performed.Results[0].Kind != "summary" {
		t.Fatalf("frame kind = %q, want summary", performed.Results[0].Kind)
	}

	mustOK(t, m, protocol.Request{Op: protocol.OpIdle, Session: "u1", Idle: time.Second})
	stats := mustOK(t, m, protocol.Request{Op: protocol.OpStats})
	if stats.Stats == nil || stats.Stats.Live != 1 || len(stats.Stats.Sessions) != 1 {
		t.Fatalf("stats = %+v, want 1 live session", stats.Stats)
	}

	mustOK(t, m, protocol.Request{Op: protocol.OpEvict, Session: "u1"})
	mustFail(t, m, protocol.Request{Op: protocol.OpEvict, Session: "u1"}, "not found")
	mustFail(t, m, protocol.Request{Op: protocol.OpPerform, Session: "u1", Object: "col", Gesture: &g}, "not found")
}

func TestHandleRequestErrors(t *testing.T) {
	m := handleManager(t)
	defer m.Close()
	mustOK(t, m, protocol.Request{Op: protocol.OpOpen, Session: "u"})

	// Version gate: zero and future versions are rejected outright.
	if resp := m.HandleRequest(protocol.Request{Op: protocol.OpStats}); resp.OK {
		t.Fatal("version 0 must be rejected")
	}
	if resp := m.HandleRequest(protocol.Request{V: protocol.Version + 1, Op: protocol.OpStats}); resp.OK {
		t.Fatal("future version must be rejected")
	}

	mustFail(t, m, protocol.Request{Op: "warp", Session: "u"}, "unknown op")
	mustFail(t, m, protocol.Request{Op: protocol.OpCreate, Session: "u", Object: "o",
		Create: &protocol.CreateSpec{Table: "missing", Column: "v", W: 2, H: 10}}, "missing")
	mustFail(t, m, protocol.Request{Op: protocol.OpCreate, Session: "u", Object: "o",
		Create: &protocol.CreateSpec{Table: "t", Column: "nope", W: 2, H: 10}}, "no column")
	mustFail(t, m, protocol.Request{Op: protocol.OpCreate, Session: "u",
		Create: &protocol.CreateSpec{Table: "t", Column: "v", W: 2, H: 10}}, "missing object name")
	mustFail(t, m, protocol.Request{Op: protocol.OpCreate, Session: "u", Object: "o"}, "missing spec")

	mustOK(t, m, protocol.Request{Op: protocol.OpCreate, Session: "u", Object: "col",
		Create: &protocol.CreateSpec{Table: "t", Column: "v", X: 2, Y: 2, W: 2, H: 10}})
	mustFail(t, m, protocol.Request{Op: protocol.OpConfigure, Session: "u", Object: "ghost",
		Actions: &protocol.ActionsSpec{Mode: "scan"}}, "unknown object")
	mustFail(t, m, protocol.Request{Op: protocol.OpConfigure, Session: "u", Object: "col",
		Actions: &protocol.ActionsSpec{Mode: "warp"}}, "unknown mode")
	mustFail(t, m, protocol.Request{Op: protocol.OpConfigure, Session: "u", Object: "col",
		Actions: &protocol.ActionsSpec{Where: []protocol.FilterSpec{{Column: "v", Op: "~", Value: 1.0}}}}, "unknown comparison")
	mustFail(t, m, protocol.Request{Op: protocol.OpConfigure, Session: "u", Object: "col"}, "missing actions")

	g := gesture.NewZoom(0, 0)
	mustFail(t, m, protocol.Request{Op: protocol.OpPerform, Session: "u", Object: "col", Gesture: &g}, "factor")
	mustFail(t, m, protocol.Request{Op: protocol.OpPerform, Session: "u", Object: "col"}, "missing gesture")

	// Pin before any touches: no hot region yet.
	mustFail(t, m, protocol.Request{Op: protocol.OpPin, Session: "u", Object: "col", As: "hot",
		Create: &protocol.CreateSpec{X: 9, Y: 2, W: 2, H: 6}}, "no hot regions")
	mustFail(t, m, protocol.Request{Op: protocol.OpPin, Session: "u", Object: "col",
		Create: &protocol.CreateSpec{X: 9, Y: 2, W: 2, H: 6}}, "missing name")
}

func TestSubscribeSessionStreamsPerformResults(t *testing.T) {
	m := handleManager(t)
	defer m.Close()
	mustOK(t, m, protocol.Request{Op: protocol.OpOpen, Session: "u"})
	mustOK(t, m, protocol.Request{Op: protocol.OpCreate, Session: "u", Object: "col",
		Create: &protocol.CreateSpec{Table: "t", Column: "v", X: 2, Y: 2, W: 2, H: 10}})

	stream, err := m.SubscribeSession("u", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	if _, err := m.SubscribeSession("ghost", 0); err == nil {
		t.Fatal("subscribing to an unknown session must error")
	}

	g := gesture.NewSlide(0, 0, 1, time.Second)
	resp := mustOK(t, m, protocol.Request{Op: protocol.OpPerform, Session: "u", Object: "col", Gesture: &g})
	for i := range resp.Results {
		r, ok := stream.TryNext()
		if !ok {
			t.Fatalf("stream ended after %d of %d results", i, len(resp.Results))
		}
		if protocol.FrameResult(r) != resp.Results[i] {
			t.Fatalf("frame %d: stream and response disagree", i)
		}
	}
	if _, ok := stream.TryNext(); ok {
		t.Fatal("stream has more results than the response")
	}
}

func TestEvictClosesSubscribedStreams(t *testing.T) {
	m := handleManager(t)
	defer m.Close()
	mustOK(t, m, protocol.Request{Op: protocol.OpOpen, Session: "u"})
	stream, err := m.SubscribeSession("u", 0)
	if err != nil {
		t.Fatal(err)
	}
	blocked := make(chan bool, 1)
	go func() {
		_, ok := stream.Next() // blocks until eviction closes the stream
		blocked <- ok
	}()
	mustOK(t, m, protocol.Request{Op: protocol.OpEvict, Session: "u"})
	select {
	case ok := <-blocked:
		if ok {
			t.Fatal("Next returned a result from an evicted session")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next still blocked after eviction — stream never closed")
	}
	if !stream.Closed() {
		t.Fatal("eviction must close subscribed streams")
	}
}

func TestManagerStats(t *testing.T) {
	m := handleManager(t)
	defer m.Close()
	m.SetMaxSessions(2)
	a, err := m.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("b"); err != nil {
		t.Fatal(err)
	}
	a.Start()

	st := m.Stats()
	if st.Live != 2 || st.Max != 2 || st.Evictions != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(st.Sessions) != 2 || st.Sessions[0].ID != "a" || st.Sessions[1].ID != "b" {
		t.Fatalf("sessions = %+v, want sorted [a b]", st.Sessions)
	}
	if !st.Sessions[0].Started || st.Sessions[1].Started {
		t.Fatalf("started flags = %+v", st.Sessions)
	}

	// A third session evicts the LRU one.
	if _, err := m.Create("c"); err != nil {
		t.Fatal(err)
	}
	st = m.Stats()
	if st.Live != 2 || st.Evictions != 1 {
		t.Fatalf("after cap: %+v", st)
	}
}

// TestHandleRequestOverloaded: admission-control rejections cross the
// wire as overloaded responses — HTTP 503 with a Retry-After hint — and
// the thin client surfaces them as protocol.ErrOverloaded.
func TestHandleRequestOverloaded(t *testing.T) {
	m := handleManager(t)
	defer m.Close()
	m.SetAdmissionCap(1)

	mustOK(t, m, protocol.Request{Op: protocol.OpOpen, Session: "u1"})
	resp := m.HandleRequest(protocol.Request{V: protocol.Version, Op: protocol.OpOpen, Session: "u2"})
	if resp.OK || !resp.Overloaded {
		t.Fatalf("open past admission cap: %+v, want overloaded failure", resp)
	}
	if resp.RetryAfter <= 0 {
		t.Fatalf("overloaded response carries no RetryAfter: %+v", resp)
	}

	// Ordinary failures must not be marked overloaded.
	resp = m.HandleRequest(protocol.Request{V: protocol.Version, Op: protocol.OpEvict, Session: "nobody"})
	if resp.OK || resp.Overloaded {
		t.Fatalf("evict of unknown session: %+v, want plain failure", resp)
	}

	srv := httptest.NewServer(protocol.NewHTTPHandler(m))
	defer srv.Close()
	client := &protocol.Client{Base: srv.URL}
	if _, err := client.Do(protocol.Request{Op: protocol.OpOpen, Session: "u3"}); !errors.Is(err, protocol.ErrOverloaded) {
		t.Fatalf("client error = %v, want protocol.ErrOverloaded", err)
	}

	// The raw HTTP surface: 503 plus Retry-After.
	body, err := protocol.EncodeRequest(protocol.Request{Op: protocol.OpOpen, Session: "u4"})
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(srv.URL+"/rpc", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", httpResp.StatusCode)
	}
	if httpResp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After header")
	}

	// Lifting the cap readmits.
	m.SetAdmissionCap(0)
	if _, err := client.Do(protocol.Request{Op: protocol.OpOpen, Session: "u5"}); err != nil {
		t.Fatalf("open after lifting cap: %v", err)
	}
}

// TestStatsFrameSchedulerFields: OpStats carries the scheduler signals
// (pool size, state partition, backlog gauge) a remote operator reads.
func TestStatsFrameSchedulerFields(t *testing.T) {
	m := handleManager(t)
	defer m.Close()
	m.SetMaxQueuedBatches(1000)
	a, err := m.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	a.Start()

	resp := mustOK(t, m, protocol.Request{Op: protocol.OpStats})
	st := resp.Stats
	if st == nil {
		t.Fatal("stats response without frame")
	}
	if st.Workers == 0 {
		t.Fatalf("stats frame workers = 0 with a started session: %+v", st)
	}
	if st.Parked != 1 {
		t.Fatalf("stats frame parked = %d, want 1: %+v", st.Parked, st)
	}
	if st.MaxQueuedBatches != 1000 {
		t.Fatalf("stats frame maxQueuedBatches = %d, want 1000", st.MaxQueuedBatches)
	}
	if len(st.Sessions) != 1 || st.Sessions[0].State != string(StateParked) {
		t.Fatalf("session frame = %+v, want state %q", st.Sessions, StateParked)
	}
}
