package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		h.Observe(d)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 2*time.Millisecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != time.Millisecond || h.Max() != 3*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if h.Sum() != 6*time.Millisecond {
		t.Fatalf("sum = %v", h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(time.Second)
	p50 := h.Quantile(0.5)
	if p50 > 4*time.Millisecond {
		t.Fatalf("p50 = %v, want ≈1ms bucket", p50)
	}
	p999 := h.Quantile(0.999)
	if p999 < 500*time.Millisecond {
		t.Fatalf("p999 = %v, want ≈1s bucket", p999)
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(time.Second)
	h.Reset()
	if h.Count() != 0 {
		t.Fatal("reset failed")
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Observe(5 * time.Millisecond)
	s := h.String()
	if !strings.Contains(s, "n=1") || !strings.Contains(s, "mean=5ms") {
		t.Fatalf("String = %q", s)
	}
}

func TestSeriesPrint(t *testing.T) {
	s := &Series{Name: "curve", XLabel: "x", YLabel: "y"}
	s.Add(1, 10)
	s.AddLabeled(2, 20, "note")
	var sb strings.Builder
	s.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"# curve", "x", "y", "10", "20", "# note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("series output missing %q:\n%s", want, out)
		}
	}
}

func TestTablePrintAlignment(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("a-much-longer-name", "22")
	var sb strings.Builder
	tb.Fprint(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), sb.String())
	}
	// Separator row present and as wide as the widest cell.
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("missing separator: %q", lines[1])
	}
	// Columns align: "value" column starts at the same offset in rows.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][idx:], "1") {
		t.Fatalf("misaligned value column:\n%s", sb.String())
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Add("b", 2)
	c.Add("a", 1)
	c.Add("b", 3)
	if c.Get("b") != 5 || c.Get("a") != 1 || c.Get("zero") != 0 {
		t.Fatal("counter math wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	var sb strings.Builder
	c.Fprint(&sb)
	if !strings.Contains(sb.String(), "5") {
		t.Fatal("Fprint missing counts")
	}
}
