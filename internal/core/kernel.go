package core

import (
	"fmt"
	"time"

	"dbtouch/internal/cache"
	"dbtouch/internal/gesture"
	"dbtouch/internal/index"
	"dbtouch/internal/iomodel"
	"dbtouch/internal/metrics"
	"dbtouch/internal/operator"
	"dbtouch/internal/prefetch"
	"dbtouch/internal/sample"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
	"dbtouch/internal/vclock"
)

// PolicyKind selects the cache eviction policy for all trackers.
type PolicyKind uint8

// Cache policies.
const (
	PolicyLRU PolicyKind = iota
	PolicyGestureAware
	PolicyNone
)

// String names the policy.
func (p PolicyKind) String() string {
	switch p {
	case PolicyLRU:
		return "lru"
	case PolicyGestureAware:
		return "gesture-aware"
	case PolicyNone:
		return "none"
	default:
		return fmt.Sprintf("PolicyKind(%d)", uint8(p))
	}
}

// Config tunes the kernel. The defaults model the paper's prototype
// device class (iPad 1): see DefaultConfig.
type Config struct {
	// ScreenW/ScreenH size the root view in centimeters.
	ScreenW, ScreenH float64
	// UIOverhead is the fixed virtual cost per handled touch: gesture
	// recognition, mapping arithmetic, and result rendering/animation.
	// On the 2010 tablet the prototype ran on, this dominates per-touch
	// latency and is what bounds effective touch throughput.
	UIOverhead time.Duration
	// EventOverhead is the small cost of touches that trigger no data
	// processing (touch-down, sub-slop moves).
	EventOverhead time.Duration
	// IO parameterizes all storage cost trackers.
	IO iomodel.Params
	// SampleLevels is the hierarchy depth above base data.
	SampleLevels int
	// UseSamples gates sample-based storage (ablation switch).
	UseSamples bool
	// Prefetch gates gesture-extrapolation prefetching.
	Prefetch bool
	// CachePolicy selects the eviction policy for every tracker.
	CachePolicy PolicyKind
	// AdaptiveOpt gates on-the-fly predicate reordering.
	AdaptiveOpt bool
	// ScalarSlide executes slide spans tuple-at-a-time through the scalar
	// reference path instead of the vectorized span kernels. Both paths
	// emit identical result streams (asserted by the span-equivalence
	// suite); the flag exists for differential testing and ablation
	// benchmarks.
	ScalarSlide bool
	// ResponseBound caps the per-touch data-processing estimate; the
	// kernel degrades to coarser sample levels to respect it. Zero
	// disables the bound.
	ResponseBound time.Duration
	// Granularity coarsens touch→tuple mapping (0/1 = full resolution).
	Granularity int
	// ResolutionPerCm overrides digitizer pointing resolution (0 = default).
	ResolutionPerCm float64
}

// DefaultConfig models the prototype setup: a 15x20 cm tablet screen,
// 65ms of UI work per processed touch (which yields the ~14-16
// entries/second the paper's Figure 4 exhibits), tablet-class storage
// latencies, a 14-level sample hierarchy, prefetching and adaptive
// optimization on.
func DefaultConfig() Config {
	return Config{
		ScreenW:       15,
		ScreenH:       20,
		UIOverhead:    65 * time.Millisecond,
		EventOverhead: time.Millisecond,
		IO:            iomodel.DefaultParams(),
		SampleLevels:  14,
		UseSamples:    true,
		Prefetch:      true,
		CachePolicy:   PolicyGestureAware,
		AdaptiveOpt:   true,
	}
}

// SampleSource supplies the shared immutable sample hierarchy for a base
// column. The session layer installs one (via ShareStorage) that
// single-flights construction across sessions, so N sessions exploring
// the same column share one set of sample arrays; a standalone kernel
// builds privately.
type SampleSource func(base *storage.Column, levels int) (*sample.Shared, error)

// Kernel is the dbTouch engine: it owns the screen, the dispatcher, the
// recognizer and all data objects, and processes one touch at a time on
// the virtual clock.
//
// Everything a kernel owns is per-session mutable state — the clock, the
// result log, per-object trackers, prefetchers and cursors — and is
// confined to one goroutine at a time. The catalog and the sample
// hierarchies' columns are the shared immutable layer underneath: a
// standalone kernel makes private ones, while kernels created by the
// session manager share them (ShareStorage) and may run concurrently
// with other sessions' kernels.
type Kernel struct {
	cfg        Config
	clock      *vclock.Clock
	screen     *touchos.View
	dispatcher *touchos.Dispatcher
	recognizer *gesture.Recognizer
	catalog    *storage.Catalog
	samples    SampleSource

	objects map[int]*Object
	byView  map[int]*Object
	nextID  int

	// derived holds session-private tables (hot-region promotions, column
	// projections) when storage is shared: they must not leak into the
	// cross-session catalog or pin entries in the shared sample store.
	// Standalone kernels (no ShareStorage) keep registering into their own
	// catalog and the maps stay nil.
	derived       map[*storage.Matrix]bool
	derivedByName map[string]*storage.Matrix

	// live tracks snapshot pins on live tables; pins is ordered by object
	// creation so repin/rebind order is deterministic (see live.go).
	live  *sample.LiveStore
	pins  []*livePin
	onPin func(table string, epoch uint64)

	results   []Result
	onResult  func(Result)
	subs      []*ResultStream
	counters  *metrics.Counters
	touchHist metrics.Histogram

	// curTouchStart timestamps the touch being handled, for per-result
	// latency.
	curTouchStart time.Duration
}

// NewKernel builds a kernel with the given config; zero-valued fields
// inherit DefaultConfig.
func NewKernel(cfg Config) *Kernel {
	def := DefaultConfig()
	if cfg.ScreenW <= 0 {
		cfg.ScreenW = def.ScreenW
	}
	if cfg.ScreenH <= 0 {
		cfg.ScreenH = def.ScreenH
	}
	if cfg.UIOverhead <= 0 {
		cfg.UIOverhead = def.UIOverhead
	}
	if cfg.EventOverhead <= 0 {
		cfg.EventOverhead = def.EventOverhead
	}
	if cfg.IO.BlockValues == 0 {
		cfg.IO = def.IO
	}
	if cfg.SampleLevels <= 0 {
		cfg.SampleLevels = def.SampleLevels
	}
	clock := vclock.New()
	return &Kernel{
		cfg:        cfg,
		clock:      clock,
		screen:     touchos.NewScreen(cfg.ScreenW, cfg.ScreenH),
		dispatcher: touchos.NewDispatcher(clock),
		recognizer: gesture.NewRecognizer(gesture.DefaultConfig()),
		catalog:    storage.NewCatalog(),
		objects:    make(map[int]*Object),
		byView:     make(map[int]*Object),
		counters:   metrics.NewCounters(),
	}
}

// ShareStorage rewires the kernel onto an explicitly shared storage
// layer: a catalog common to all sessions and a sample source that
// deduplicates hierarchy construction across them. It must be called
// before any objects are created; the session manager calls it at
// session creation.
func (k *Kernel) ShareStorage(catalog *storage.Catalog, samples SampleSource) {
	if len(k.objects) > 0 {
		panic("core: ShareStorage after objects were created")
	}
	if catalog != nil {
		k.catalog = catalog
	}
	k.samples = samples
	k.derived = make(map[*storage.Matrix]bool)
	k.derivedByName = make(map[string]*storage.Matrix)
}

// registerDerived records a session-derived table (promotion, projection):
// privately when storage is shared, in the kernel's own catalog otherwise.
func (k *Kernel) registerDerived(m *storage.Matrix) {
	if k.derived != nil {
		k.derived[m] = true
		k.derivedByName[m.Name()] = m
		return
	}
	k.catalog.Register(m)
}

// Lookup resolves a table by name: the session's own derived tables
// shadow the shared catalog.
func (k *Kernel) Lookup(name string) (*storage.Matrix, error) {
	if m, ok := k.derivedByName[name]; ok {
		return m, nil
	}
	return k.catalog.Get(name)
}

// sampleShared resolves the sample hierarchy for column base of matrix m:
// through the installed SampleSource when the matrix genuinely lives in
// the shared catalog, privately otherwise (standalone kernels, and
// session-derived tables that must not pin entries in the shared store).
func (k *Kernel) sampleShared(m *storage.Matrix, base *storage.Column, levels int) (*sample.Shared, error) {
	if k.samples != nil && !k.derived[m] {
		if got, err := k.catalog.Get(m.Name()); err == nil && got == m {
			return k.samples(base, levels)
		}
	}
	return sample.BuildShared(base, levels)
}

// Clock exposes the virtual clock.
func (k *Kernel) Clock() *vclock.Clock { return k.clock }

// Screen exposes the root view.
func (k *Kernel) Screen() *touchos.View { return k.screen }

// Catalog exposes the matrix registry.
func (k *Kernel) Catalog() *storage.Catalog { return k.catalog }

// Config returns the active configuration.
func (k *Kernel) Config() Config { return k.cfg }

// Counters exposes kernel counters.
func (k *Kernel) Counters() *metrics.Counters { return k.counters }

// TouchLatency exposes the per-touch busy-time histogram.
func (k *Kernel) TouchLatency() *metrics.Histogram { return &k.touchHist }

// DispatchStats exposes dispatcher delivery/coalescing counters.
func (k *Kernel) DispatchStats() touchos.DispatchStats { return k.dispatcher.Stats() }

// OnResult registers a callback invoked for every emitted result (the
// front-end hook, and the way to observe the full unbounded stream).
// Results are also retained while visible; see Results.
func (k *Kernel) OnResult(fn func(Result)) { k.onResult = fn }

// Results returns the retained results: everything still visible on
// screen (not yet faded) plus all results emitted since the last Apply
// call (shared slice; treat as read-only). Faded results are pruned at
// the next Apply, bounding kernel memory for long-running sessions;
// subscribe with OnResult to observe the complete stream.
func (k *Kernel) Results() []Result { return k.results }

// ResetResults clears retained results (between experiment runs).
func (k *Kernel) ResetResults() { k.results = nil }

// newPolicy builds a fresh eviction policy instance per tracker.
func (k *Kernel) newPolicy() iomodel.EvictionPolicy {
	switch k.cfg.CachePolicy {
	case PolicyGestureAware:
		return cache.NewGestureAware(8)
	case PolicyNone:
		return cache.None{}
	default:
		return iomodel.LRU{}
	}
}

// CreateColumnObject registers a visual object over one column of m with
// the given frame, building its sample hierarchy, and returns it. The
// matrix must be column-major (rotate or project first otherwise).
func (k *Kernel) CreateColumnObject(m *storage.Matrix, col int, frame touchos.Rect) (*Object, error) {
	if t, ok := k.catalog.Live(m.Name()); ok {
		return k.createLiveColumnObject(t, col, frame)
	}
	column, err := m.Column(col)
	if err != nil {
		return nil, err
	}
	levels := 0
	if k.cfg.UseSamples {
		levels = k.cfg.SampleLevels
	}
	shared, err := k.sampleShared(m, column, levels)
	if err != nil {
		return nil, err
	}
	h := shared.Attach(k.clock, k.cfg.IO, k.newPolicy)
	o := k.newObject(m, col, frame)
	o.hierarchy = h
	k.finishObject(o)
	return o, nil
}

// createLiveColumnObject binds a column object to the kernel's pinned
// version of a live table; the pin is taken at first use and advanced at
// every batch start (see live.go).
func (k *Kernel) createLiveColumnObject(t *storage.Table, col int, frame touchos.Rect) (*Object, error) {
	lp := k.pinFor(t)
	m := lp.pin.Snap.Matrix
	if _, err := m.Column(col); err != nil {
		return nil, err
	}
	shared, err := lp.pin.Samples(col, k.liveSampleLevels(), k.cfg.IO.BlockValues)
	if err != nil {
		return nil, err
	}
	h := shared.Attach(k.clock, k.cfg.IO, k.newPolicy)
	o := k.newObject(m, col, frame)
	o.hierarchy = h
	o.live = t
	o.liveGen = lp.pin.Snap.Gen
	k.finishObject(o)
	return o, nil
}

// CreateTableObject registers a visual object over the whole matrix
// (either layout).
func (k *Kernel) CreateTableObject(m *storage.Matrix, frame touchos.Rect) (*Object, error) {
	var live *storage.Table
	var liveGen uint64
	if t, ok := k.catalog.Live(m.Name()); ok {
		lp := k.pinFor(t)
		m = lp.pin.Snap.Matrix
		live, liveGen = t, lp.pin.Snap.Gen
	}
	if m.NumRows() == 0 {
		return nil, fmt.Errorf("core: table object over empty matrix %q", m.Name())
	}
	o := k.newObject(m, -1, frame)
	o.cellTracker = iomodel.New(k.clock, k.cfg.IO, k.newPolicy())
	o.live = live
	o.liveGen = liveGen
	k.finishObject(o)
	return o, nil
}

func (k *Kernel) newObject(m *storage.Matrix, col int, frame touchos.Rect) *Object {
	k.nextID++
	name := m.Name()
	if col >= 0 {
		name = fmt.Sprintf("%s.%s", m.Name(), m.Schema()[col].Name)
	}
	view := touchos.NewView(name, frame)
	o := &Object{
		id:      k.nextID,
		kernel:  k,
		view:    view,
		matrix:  m,
		colIdx:  col,
		extrap:  &prefetch.Extrapolator{},
		indexes: index.NewRegistry(),
		lastID:  -1,
	}
	o.prefetcher = prefetch.New(o.extrap)
	o.prefetcher.Enabled = k.cfg.Prefetch
	o.SetActions(DefaultActions())
	return o
}

func (k *Kernel) finishObject(o *Object) {
	rows, cols := o.matrix.NumRows(), o.matrix.NumCols()
	if o.IsColumn() {
		cols = 1
	}
	o.view.SetProps(touchos.DataProps{ObjectID: o.id, Rows: rows, Cols: cols})
	_ = k.screen.AddChild(o.view)
	k.objects[o.id] = o
	k.byView[o.view.ID()] = o
	k.registerObjectMatrix(o.matrix)
}

// registerObjectMatrix makes an object's backing matrix resolvable by
// name. Standalone kernels register into their own catalog; kernels over
// shared storage keep anything that is not already the catalog's entry
// session-private, so per-session tables never leak across sessions.
func (k *Kernel) registerObjectMatrix(m *storage.Matrix) {
	// A live table's snapshot matrix carries the table's name: registering
	// it (shared or derived) would shadow the live entry with one frozen
	// version, so live names resolve through the catalog's live registry
	// only.
	if k.catalog.IsLive(m.Name()) {
		return
	}
	if k.derived == nil {
		k.catalog.Register(m)
		return
	}
	if k.derived[m] {
		return
	}
	if got, err := k.catalog.Get(m.Name()); err == nil && got == m {
		return
	}
	k.registerDerived(m)
}

// Object resolves an object by id.
func (k *Kernel) Object(id int) (*Object, error) {
	o, ok := k.objects[id]
	if !ok {
		return nil, fmt.Errorf("core: no object %d", id)
	}
	return o, nil
}

// Objects lists all registered objects.
func (k *Kernel) Objects() []*Object {
	out := make([]*Object, 0, len(k.objects))
	for _, o := range k.objects {
		out = append(out, o)
	}
	return out
}

// RemoveObject detaches an object and its view.
func (k *Kernel) RemoveObject(id int) {
	o, ok := k.objects[id]
	if !ok {
		return
	}
	k.screen.RemoveChild(o.view)
	delete(k.byView, o.view.ID())
	delete(k.objects, id)
}

// ProjectColumnOut implements the drag-a-column-out gesture (paper §2.8):
// it materializes column col of a table object as an independent
// single-column object with the given frame.
func (k *Kernel) ProjectColumnOut(tableObj *Object, col int, frame touchos.Rect) (*Object, error) {
	projected, err := tableObj.matrix.Project(col)
	if err != nil {
		return nil, err
	}
	// Copying the column costs one pass over it.
	k.clock.Advance(time.Duration(tableObj.matrix.NumRows()) * 50 * time.Nanosecond)
	k.registerDerived(projected)
	k.counters.Add("gesture.projections", 1)
	return k.CreateColumnObject(projected, 0, frame)
}

// wireJoin connects two objects through one shared symmetric hash join.
func (k *Kernel) wireJoin(o *Object, spec *JoinSpec) {
	other, ok := k.objects[spec.OtherObject]
	if !ok {
		return
	}
	left, right := o, other
	if spec.Side == JoinRight {
		left, right = other, o
	}
	lcol, errL := left.column()
	rcol, errR := right.column()
	if errL != nil || errR != nil {
		return
	}
	j := operator.NewSymmetricHashJoin(lcol, rcol)
	left.join, left.joinSide = j, JoinLeft
	right.join, right.joinSide = j, JoinRight
}

// Apply pushes a batch of raw touch events through the dispatcher and
// returns the results emitted during the batch.
func (k *Kernel) Apply(events []touchos.TouchEvent) []Result {
	k.repinLive()
	k.pruneFaded()
	mark := len(k.results)
	k.dispatcher.Dispatch(events, k.handleTouch, k.onIdle)
	return k.results[mark:]
}

// pruneFaded drops results that have already faded from the screen, so
// the retained window is bounded by the fade horizon instead of the
// session length. Results are emitted in nondecreasing virtual time, so
// the faded ones form a prefix. The live suffix moves to a fresh backing
// array: slices returned by earlier Apply calls keep their data.
func (k *Kernel) pruneFaded() {
	now := k.clock.Now()
	faded := 0
	for faded < len(k.results) && k.results[faded].FadeAt <= now {
		faded++
	}
	if faded == 0 {
		return
	}
	live := make([]Result, len(k.results)-faded)
	copy(live, k.results[faded:])
	k.results = live
}

// handleTouch is the per-touch pipeline of Figure 3: recognize the
// gesture, map the touch to data, execute, emit.
func (k *Kernel) handleTouch(ev touchos.TouchEvent) time.Duration {
	t0 := k.clock.Now()
	k.curTouchStart = t0
	processed := false
	for _, ge := range k.recognizer.Feed(ev) {
		o := k.hitObject(ge.Loc)
		if o == nil {
			k.counters.Add("touch.misses", 1)
			continue
		}
		processed = true
		switch ge.Kind {
		case gesture.Tap:
			o.processTap(ge)
		case gesture.SlideBegan:
			o.beginSlide(ge)
		case gesture.SlideStep:
			o.processSlideStep(ge)
		case gesture.SlideEnded:
			o.endSlide(ge)
		case gesture.PinchEnded:
			o.applyZoom(ge.Scale)
		case gesture.RotateEnded:
			o.applyRotate(ge.Angle)
		}
	}
	dataTime := k.clock.Now() - t0
	busy := k.cfg.EventOverhead + dataTime
	if processed {
		busy = k.cfg.UIOverhead + dataTime
	}
	k.touchHist.Observe(busy)
	k.counters.Add("touch.handled", 1)
	return busy
}

// hitObject resolves the data object under a screen point.
func (k *Kernel) hitObject(p touchos.Point) *Object {
	v := k.screen.HitTest(p)
	if v == nil {
		return nil
	}
	for ; v != nil; v = v.Parent() {
		if o, ok := k.byView[v.ID()]; ok {
			return o
		}
	}
	return nil
}

// onIdle gives background machinery the gap between touches: prefetchers
// warm predicted blocks, layout conversions advance.
func (k *Kernel) onIdle(from, to time.Duration) {
	budget := to - from
	if budget <= 0 {
		return
	}
	for _, o := range k.objects {
		if o.conv != nil {
			o.advanceConversion(budget)
			continue
		}
		if o.prefetcher == nil || !o.prefetcher.Enabled || o.hierarchy == nil {
			continue
		}
		lvl, err := o.hierarchy.Level(o.lastLevel)
		if err != nil {
			continue
		}
		stride := lvl.Stride
		n := lvl.Col.Len()
		o.prefetcher.OnIdle(from, to, lvl.Tracker, func(baseID int) int {
			idx := baseID / stride
			if idx < 0 {
				return 0
			}
			if idx >= n {
				return n - 1
			}
			return idx
		})
	}
}

// RunIdle hands the window [from, to) to the background machinery and
// advances the clock to its end — the user lifted the finger. Exposed for
// the facade and tests; the dispatcher calls onIdle directly for gaps
// inside event streams.
func (k *Kernel) RunIdle(from, to time.Duration) {
	if to <= from {
		return
	}
	k.onIdle(from, to)
	k.clock.AdvanceTo(to)
}

// emit records a result, stamping times and latency, and fans it out to
// the OnResult callback and every live subscribed stream (closed streams
// are unsubscribed here).
func (k *Kernel) emit(r Result) {
	r.Time = k.clock.Now()
	r.FadeAt = r.Time + FadeAfter
	r.Latency = k.clock.Now() - k.curTouchStart
	k.results = append(k.results, r)
	k.counters.Add("results.emitted", 1)
	if k.onResult != nil {
		k.onResult(r)
	}
	if len(k.subs) > 0 {
		live := k.subs[:0]
		for _, s := range k.subs {
			if s.push(r) {
				live = append(live, s)
			}
		}
		for i := len(live); i < len(k.subs); i++ {
			k.subs[i] = nil
		}
		k.subs = live
	}
}

// Perform executes a serializable gesture description against its target
// object: the description is synthesized into a digitizer-rate touch
// stream starting at the current virtual instant and pushed through the
// normal touch pipeline, so a performed gesture is byte-identical to the
// same gesture driven by raw events. KindMove applies directly (it is a
// UI reposition, not a touch). Unknown targets and invalid descriptions
// return an error without advancing the clock.
func (k *Kernel) Perform(g gesture.Gesture) ([]Result, error) {
	o, err := k.Object(g.Target)
	if err != nil {
		return nil, err
	}
	if g.Kind == gesture.KindMove {
		if err := g.Validate(); err != nil {
			return nil, err
		}
		f := o.view.Frame()
		f.Origin = touchos.Point{X: g.X, Y: g.Y}
		o.view.SetFrame(f)
		return nil, nil
	}
	events, err := g.Synthesize(gesture.Synth{}, o.view.Frame(), k.clock.Now())
	if err != nil {
		return nil, err
	}
	return k.Apply(events), nil
}
