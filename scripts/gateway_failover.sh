#!/usr/bin/env bash
# gateway_failover.sh — end-to-end fleet gate (wired into CI): run three
# dbtouch-serve backends on one shared -session-dir behind
# dbtouch-gateway, drive an exploration through the gateway with a live
# /stream attached, kill -9 whichever backend the session is pinned to
# mid-run — and prove the concatenated perform responses are
# byte-identical to a control run against a single undisturbed server,
# that the stream keeps delivering frames across the failover, and that
# the gateway actually failed over (counters in /gatewayz).
. "$(dirname "$0")/lib.sh"
lib_init

prefix_gestures=(
  '{"kind":"tap","frac":0.1}'
  '{"kind":"tap","frac":0.3}'
  '{"kind":"slide","to":1,"dur":2000000000}'
  '{"kind":"tap","frac":0.5}'
)
suffix_gestures=(
  '{"kind":"tap","frac":0.7}'
  '{"kind":"slide","from":1,"dur":1000000000}'
  '{"kind":"tap","frac":0.9}'
)

session_open() {
  rpc "$1" '{"v":1,"op":"open","session":"smoke"}' >/dev/null
  rpc "$1" '{"v":1,"op":"create","session":"smoke","object":"o","create":{"table":"t","column":"v","x":2,"y":2,"w":2,"h":10}}' >/dev/null
}

perform() {
  local addr="$1" out="$2" g
  shift 2
  for g in "$@"; do
    printf '%s\n' "$(rpc "$addr" '{"v":1,"op":"perform","session":"smoke","object":"o","gesture":'"$g"'}')" >>"$out"
  done
}

# Control: one undisturbed server, no gateway, no durability.
addr=127.0.0.1:18944
serve_start -addr "$addr" -rows 100000
serve_wait "$addr"
session_open "$addr"
perform "$addr" "$work/control.out" "${prefix_gestures[@]}" "${suffix_gestures[@]}"
serve_stop TERM

# The fleet: three backends on one shared session directory.
b1=127.0.0.1:18941; b2=127.0.0.1:18942; b3=127.0.0.1:18943
serve_start -addr "$b1" -rows 100000 -session-dir "$work/sessions"
pid_18941=$serve_pid
serve_start -addr "$b2" -rows 100000 -session-dir "$work/sessions"
pid_18942=$serve_pid
serve_start -addr "$b3" -rows 100000 -session-dir "$work/sessions"
pid_18943=$serve_pid
serve_wait "$b1" "$pid_18941"
serve_wait "$b2" "$pid_18942"
serve_wait "$b3" "$pid_18943"

gw=127.0.0.1:18940
gateway_start -addr "$gw" -backends "http://$b1,http://$b2,http://$b3" \
  -health-interval 100ms -fail-threshold 2 -open-cooldown 500ms \
  -retry-base 20ms -retry-cap 200ms -retry-attempts 8
gateway_pid=$serve_pid
gateway_log=$serve_log
serve_wait "$gw" "$gateway_pid"

# The same exploration through the gateway, with a live stream attached.
session_open "$gw"
curl -sN "http://$gw/stream?session=smoke" >"$work/stream.out" &
stream_pid=$!
serve_pids+=("$stream_pid")

perform "$gw" "$work/fleet.out" "${prefix_gestures[@]}"
sleep 0.5
frames_before=$(wc -l <"$work/stream.out")
[ "$frames_before" -gt 0 ] || {
  echo "FAIL: stream delivered no frames before the kill" >&2
  cat "$gateway_log" >&2
  exit 1
}

# Find the backend the session is pinned to and pull its plug.
pinned_port=$(curl -sf "http://$gw/gatewayz" |
  sed -n 's/.*"smoke": *"http:\/\/127\.0\.0\.1:\([0-9]*\)".*/\1/p')
[ -n "$pinned_port" ] || {
  echo "FAIL: /gatewayz reports no pin for the session" >&2
  curl -sf "http://$gw/gatewayz" >&2 || true
  exit 1
}
pinned_pid_var="pid_$pinned_port"
echo "killing pinned backend 127.0.0.1:$pinned_port (pid ${!pinned_pid_var})"
serve_kill9 "${!pinned_pid_var}"

# The rest of the exploration must come back byte-identical: the gateway
# re-pins, resumes the session from the shared log, and retries.
perform "$gw" "$work/fleet.out" "${suffix_gestures[@]}"
sleep 0.5

if ! cmp -s "$work/control.out" "$work/fleet.out"; then
  echo "FAIL: gateway responses diverged from the single-server control run:" >&2
  diff "$work/control.out" "$work/fleet.out" >&2 || true
  cat "$gateway_log" >&2
  exit 1
fi

frames_after=$(wc -l <"$work/stream.out")
[ "$frames_after" -gt "$frames_before" ] || {
  echo "FAIL: stream stalled across the failover ($frames_before frames before, $frames_after after)" >&2
  cat "$gateway_log" >&2
  exit 1
}

stats=$(curl -sf "http://$gw/gatewayz")
echo "$stats" | grep -q '"failovers": *[1-9]' || {
  echo "FAIL: gateway reports no failover: $stats" >&2
  exit 1
}
echo "$stats" | grep -q '"resumes": *[1-9]' || {
  echo "FAIL: gateway reports no resume: $stats" >&2
  exit 1
}
new_pin=$(echo "$stats" |
  sed -n 's/.*"smoke": *"http:\/\/127\.0\.0\.1:\([0-9]*\)".*/\1/p')
[ -n "$new_pin" ] && [ "$new_pin" != "$pinned_port" ] || {
  echo "FAIL: session still pinned to the dead backend :$pinned_port" >&2
  echo "$stats" >&2
  exit 1
}

serve_stop TERM "$gateway_pid"
echo "ok: kill -9 of pinned backend :$pinned_port invisible to the client" \
  "($(wc -l <"$work/fleet.out") responses byte-identical, stream $frames_before -> $frames_after frames, re-pinned to :$new_pin)"
