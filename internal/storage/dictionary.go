package storage

import "sync"

// Dictionary maps strings to dense int32 codes so string columns can be
// stored as fixed-width words, the invariant dbTouch relies on for direct
// positional addressing (paper §2.6).
//
// The dictionary is internally synchronized: live ingestion appends
// (Intern) may race exploration sessions decoding codes (Lookup) on the
// same dictionary, because column snapshots share their table's
// dictionary across append epochs. Codes are assigned once and never
// reassigned, so a code observed through a published snapshot always
// decodes to the same string. Lookup/Code sit off the span hot path (the
// filter kernels memoize per-code outcomes), so the lock is not a
// kernel-loop cost.
type Dictionary struct {
	mu     sync.RWMutex
	values []string
	index  map[string]int32
}

// NewDictionary returns an empty dictionary ready for interning.
func NewDictionary() *Dictionary {
	return &Dictionary{index: make(map[string]int32)}
}

// Intern returns the code for s, assigning a new code on first sight.
func (d *Dictionary) Intern(s string) int32 {
	d.mu.RLock()
	code, ok := d.index[s]
	d.mu.RUnlock()
	if ok {
		return code
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if code, ok := d.index[s]; ok {
		return code
	}
	code = int32(len(d.values))
	d.values = append(d.values, s)
	d.index[s] = code
	return code
}

// Code returns the code for s and whether it is present, without interning.
func (d *Dictionary) Code(s string) (int32, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	code, ok := d.index[s]
	return code, ok
}

// Lookup returns the string for a code; unknown codes decode to "".
func (d *Dictionary) Lookup(code int32) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if code < 0 || int(code) >= len(d.values) {
		return ""
	}
	return d.values[code]
}

// Len reports the number of distinct strings interned.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.values)
}

// Clone returns an independent copy of the dictionary.
func (d *Dictionary) Clone() *Dictionary {
	d.mu.RLock()
	defer d.mu.RUnlock()
	c := &Dictionary{
		values: append([]string(nil), d.values...),
		index:  make(map[string]int32, len(d.index)),
	}
	for s, code := range d.index {
		c.index[s] = code
	}
	return c
}
