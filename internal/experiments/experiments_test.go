package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"dbtouch/internal/metrics"
)

// The experiment suite is the integration test of the whole system: each
// test asserts the *shape* the paper reports, at test scale.

func cellInt(t *testing.T, tb *metrics.Table, row, col int) int64 {
	t.Helper()
	v, err := strconv.ParseInt(tb.Rows[row][col], 10, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not an int: %v", row, col, tb.Rows[row][col], err)
	}
	return v
}

func cellDuration(t *testing.T, tb *metrics.Table, row, col int) time.Duration {
	t.Helper()
	d, err := time.ParseDuration(tb.Rows[row][col])
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not a duration: %v", row, col, tb.Rows[row][col], err)
	}
	return d
}

func TestFig4aShape(t *testing.T) {
	s := Fig4aGestureSpeed(Small())
	if len(s.Points) != 8 {
		t.Fatalf("points = %d", len(s.Points))
	}
	// Strictly more entries as the gesture slows down.
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Y <= s.Points[i-1].Y {
			t.Fatalf("entries not increasing with duration: %v", s.Points)
		}
	}
	// The paper's endpoints: ≈9 at 0.5s, ≈55 at 4s — both within 2x.
	first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y
	if first < 4 || first > 18 {
		t.Fatalf("0.5s entries = %v, paper reports ≈9", first)
	}
	if last < 28 || last > 110 {
		t.Fatalf("4s entries = %v, paper reports ≈55", last)
	}
	// Roughly linear: 8x duration ⇒ ≥5x entries.
	if last < first*5 {
		t.Fatalf("slope too shallow: %v → %v", first, last)
	}
}

func TestFig4bShape(t *testing.T) {
	s := Fig4bObjectSize(Small())
	if len(s.Points) != 4 {
		t.Fatalf("points = %d", len(s.Points))
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Y <= s.Points[i-1].Y {
			t.Fatalf("entries not increasing with size: %v", s.Points)
		}
		// Zoom-in doubles the size each step.
		ratio := s.Points[i].X / s.Points[i-1].X
		if ratio < 1.9 || ratio > 2.1 {
			t.Fatalf("object size not doubling: %v", s.Points)
		}
	}
	// Entries roughly double per step too (same gesture speed over a
	// doubled object).
	last, first := s.Points[3].Y, s.Points[0].Y
	if last < first*4 {
		t.Fatalf("size scaling too shallow: %v", s.Points)
	}
}

func TestZoomGranularityShape(t *testing.T) {
	s := ZoomGranularity(Small())
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Y <= s.Points[i-1].Y {
			t.Fatalf("addressable tuples not increasing with zoom: %v", s.Points)
		}
	}
	// At the digitizer bound: ≈20 positions/cm.
	last := s.Points[len(s.Points)-1]
	perCm := last.Y / last.X
	if perCm < 15 || perCm > 22 {
		t.Fatalf("addressable per cm = %v, want ≈20", perCm)
	}
}

func TestSampleHierarchyReducesReads(t *testing.T) {
	tb := SampleHierarchy(Small())
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %v", tb.Rows)
	}
	// Row 0 = sample-hierarchy, row 1 = base-data-only.
	sampleBytes := cellInt(t, tb, 0, 4)
	baseBytes := cellInt(t, tb, 1, 4)
	if sampleBytes*4 > baseBytes {
		t.Fatalf("samples moved %d bytes vs base %d; want ≥4x reduction", sampleBytes, baseBytes)
	}
	// Same entries returned either way (the answer quality knob is
	// unchanged; only the data source differs).
	if cellInt(t, tb, 0, 1) != cellInt(t, tb, 1, 1) {
		t.Fatalf("entries differ between storage modes: %v", tb.Rows)
	}
}

func TestPrefetchCutsColdFetches(t *testing.T) {
	tb := Prefetch(Small())
	onCold := cellInt(t, tb, 0, 2)
	offCold := cellInt(t, tb, 1, 2)
	if onCold*10 > offCold {
		t.Fatalf("prefetch on: %d cold, off: %d; want ≥10x reduction", onCold, offCold)
	}
	if cellInt(t, tb, 0, 3) == 0 {
		t.Fatal("prefetcher warmed nothing")
	}
}

func TestCachingPoliciesOrdering(t *testing.T) {
	tb := Caching(Small())
	byName := map[string]int64{}
	for _, row := range tb.Rows {
		v, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		byName[row[0]] = v
	}
	if byName["gesture-aware"] > byName["lru"] {
		t.Fatalf("gesture-aware cold %d worse than lru %d", byName["gesture-aware"], byName["lru"])
	}
	if byName["none"] < byName["lru"]*2 {
		t.Fatalf("no-cache cold %d should be far worse than lru %d", byName["none"], byName["lru"])
	}
}

func TestSummaryKScalesValuesPerTouch(t *testing.T) {
	tb := SummaryK(Small())
	// values-per-touch = 2k+1 exactly.
	ks := []int{0, 1, 5, 10, 50, 100, 500}
	for i, k := range ks {
		got, err := strconv.ParseFloat(tb.Rows[i][3], 64)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(2*k + 1)
		if got < want*0.95 || got > want*1.05 {
			t.Fatalf("k=%d values/touch = %v, want %v", k, got, want)
		}
	}
}

func TestAdaptiveOptimizerSavesEvals(t *testing.T) {
	tb := AdaptiveOptimizer(Small())
	adaptiveEvals := cellInt(t, tb, 0, 3)
	fixedEvals := cellInt(t, tb, 1, 3)
	if adaptiveEvals >= fixedEvals {
		t.Fatalf("adaptive %d evals vs fixed %d; adaptation must help", adaptiveEvals, fixedEvals)
	}
	if cellInt(t, tb, 0, 4) == 0 {
		t.Fatal("adaptive optimizer never reordered")
	}
	// Both configurations return the same passing touches.
	if cellInt(t, tb, 0, 1) != cellInt(t, tb, 1, 1) {
		t.Fatalf("optimizer changed results: %v", tb.Rows)
	}
}

func TestRotateSampleFirstFasterToQueryable(t *testing.T) {
	tb := RotateLayout(Small())
	fullFirst := cellDuration(t, tb, 0, 1)
	sampleFirst := cellDuration(t, tb, 1, 1)
	if sampleFirst*10 > fullFirst {
		t.Fatalf("sample-first queryable at %v vs full %v; want ≥10x faster", sampleFirst, fullFirst)
	}
	// Total completion within 2x of the one-shot copy.
	fullDone := cellDuration(t, tb, 0, 2)
	sampleDone := cellDuration(t, tb, 1, 2)
	if sampleDone > fullDone*2 {
		t.Fatalf("sample-first total %v vs full %v", sampleDone, fullDone)
	}
}

func TestJoinSymmetricFirstMatchEarlier(t *testing.T) {
	tb := JoinNonBlocking(Small())
	symFirst := cellDuration(t, tb, 0, 1)
	blkFirst := cellDuration(t, tb, 1, 1)
	if symFirst*2 > blkFirst {
		t.Fatalf("symmetric first match %v vs blocking %v; non-blocking must be much earlier", symFirst, blkFirst)
	}
	// Identical match counts.
	if tb.Rows[0][3] != tb.Rows[1][3] {
		t.Fatalf("match counts differ: %v", tb.Rows)
	}
}

func TestIndexedSlideCheaperThanScan(t *testing.T) {
	tb := IndexedSlide(Small())
	var rangeIdx, rangeScan int64
	for _, row := range tb.Rows {
		v, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case strings.HasPrefix(row[0], "index-range"):
			rangeIdx = v
		case strings.HasPrefix(row[0], "fullscan-range"):
			rangeScan = v
		}
	}
	if rangeIdx*10 > rangeScan {
		t.Fatalf("index range read %d values vs scan %d", rangeIdx, rangeScan)
	}
}

func TestRemoteBatchingShape(t *testing.T) {
	tb := RemoteProcessing(Small())
	batchedTrips := cellInt(t, tb, 0, 1)
	perTouchTrips := cellInt(t, tb, 1, 1)
	if batchedTrips*2 > perTouchTrips {
		t.Fatalf("batched %d trips vs per-touch %d", batchedTrips, perTouchTrips)
	}
	// Everything still answered locally first.
	if cellInt(t, tb, 0, 3) != cellInt(t, tb, 1, 3) {
		t.Fatalf("local answers differ: %v", tb.Rows)
	}
}

func TestContestShape(t *testing.T) {
	tb := Contest(Small())
	// Rows alternate dbtouch/sql per task; compare pairs.
	for i := 0; i+1 < len(tb.Rows); i += 2 {
		task := tb.Rows[i][0]
		if tb.Rows[i][2] != "yes" {
			t.Fatalf("task %s: dbtouch agent failed: %v", task, tb.Rows[i])
		}
		if tb.Rows[i+1][2] != "yes" {
			t.Fatalf("task %s: sql agent failed: %v", task, tb.Rows[i+1])
		}
		dbTime := cellDuration(t, tb, i, 3)
		sqlTime := cellDuration(t, tb, i+1, 3)
		if dbTime >= sqlTime {
			t.Fatalf("task %s: dbtouch %v not faster than sql %v", task, dbTime, sqlTime)
		}
		dbTuples := cellInt(t, tb, i, 5)
		sqlTuples := cellInt(t, tb, i+1, 5)
		if dbTuples*10 > sqlTuples {
			t.Fatalf("task %s: dbtouch read %d tuples, sql %d; want ≥10x less", task, dbTuples, sqlTuples)
		}
	}
}
