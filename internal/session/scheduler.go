package session

import (
	"sync"
	"sync/atomic"
)

// The scheduler replaces the goroutine-per-session model: a fixed pool
// of workers (default GOMAXPROCS) pulls runnable sessions from
// per-worker deques, stealing from siblings when its own deque runs
// dry. A session with queued batches is *runnable* and lives in exactly
// one deque; a session whose queue drained is *parked* and costs zero
// goroutines — 10k mostly-idle users hold O(workers) goroutines, not
// O(sessions). A per-session fairness budget (events per dispatch)
// preempts gesture-spamming sessions: once a dispatch's executed events
// reach the budget, the session goes to the back of the worker's deque
// and the next runnable session gets the worker. Batches are atomic —
// one batch is one gesture's event stream, and the touchos dispatcher
// coalesces superseded samples within a batch, so splitting one would
// change results — which means the budget is enforced at batch
// boundaries: a session yields after the first batch that crosses it,
// and the worst-case delay it can impose on others per dispatch is
// max(budget, its largest single batch) events.
//
// Determinism contract: a session is executed by at most one worker at
// a time, and its batches run in Enqueue order — so per-session result
// streams stay byte-identical to sequential execution at any pool size
// (asserted by the equivalence suite at pool sizes 1, 4 and
// GOMAXPROCS).

// DefaultFairnessBudget is the events-per-dispatch quantum: roughly
// four seconds of digitizer-rate touch input (60 Hz) before a busy
// session yields the worker.
const DefaultFairnessBudget = 256

// Session scheduling states. Guarded by Session.pendingMu.
const (
	// schedParked: no backlog, not in any deque, no goroutine.
	schedParked = iota
	// schedRunnable: queued batches, waiting in exactly one deque.
	schedRunnable
	// schedRunning: a worker is executing its batches right now.
	schedRunning
)

// scheduler is the bounded work-stealing pool. One per Manager, built
// lazily when the first session starts, torn down by Manager.Close.
type scheduler struct {
	manager *Manager
	workers []*schedWorker

	// mu guards the park/wake state: runnable counts sessions sitting
	// in deques, idle counts workers blocked in cond.Wait.
	mu       sync.Mutex
	cond     *sync.Cond
	runnable int
	idle     int
	closed   bool

	// rr spreads external submissions round-robin across deques.
	rr atomic.Uint64
	// steals and dispatches are lifetime counters for Stats.
	steals     atomic.Int64
	dispatches atomic.Int64

	wg sync.WaitGroup
}

// schedWorker is one pool worker and its deque. The owner pops from the
// front (FIFO fairness), external submissions and post-budget
// resubmissions append to the back, and thieves steal from the back.
type schedWorker struct {
	id    int
	sched *scheduler

	mu    sync.Mutex
	deque []*Session
}

// newScheduler builds the pool and starts its workers (parked until the
// first submission).
func newScheduler(m *Manager, workers int) *scheduler {
	if workers < 1 {
		workers = 1
	}
	sc := &scheduler{manager: m}
	sc.cond = sync.NewCond(&sc.mu)
	sc.workers = make([]*schedWorker, workers)
	for i := range sc.workers {
		sc.workers[i] = &schedWorker{id: i, sched: sc}
	}
	sc.wg.Add(workers)
	for _, w := range sc.workers {
		go w.loop()
	}
	return sc
}

// submit makes a session runnable: the caller must have transitioned it
// to schedRunnable under its pendingMu (exactly one submitter wins that
// transition, so a session is never in two deques).
func (sc *scheduler) submit(s *Session) {
	w := sc.workers[int(sc.rr.Add(1))%len(sc.workers)]
	w.push(s)
	sc.wake()
}

// resubmit returns a budget-preempted session to the back of the
// executing worker's own deque (round-robin with its other sessions;
// siblings can steal it).
func (sc *scheduler) resubmit(w *schedWorker, s *Session) {
	w.push(s)
	sc.wake()
}

// wake accounts one more runnable session and unparks a worker if any
// is idle.
func (sc *scheduler) wake() {
	sc.mu.Lock()
	sc.runnable++
	if sc.idle > 0 {
		sc.cond.Signal()
	}
	sc.mu.Unlock()
}

// stop shuts the pool down. The manager closes (and drains) every
// session first, so remaining deque entries have empty backlogs and
// workers fall through them before exiting.
func (sc *scheduler) stop() {
	sc.mu.Lock()
	sc.closed = true
	sc.cond.Broadcast()
	sc.mu.Unlock()
	sc.wg.Wait()
}

// push appends to the back of the worker's deque.
func (w *schedWorker) push(s *Session) {
	w.mu.Lock()
	w.deque = append(w.deque, s)
	w.mu.Unlock()
}

// pop takes the oldest session from the worker's own deque.
func (w *schedWorker) pop() *Session {
	w.mu.Lock()
	if len(w.deque) == 0 {
		w.mu.Unlock()
		return nil
	}
	s := w.deque[0]
	w.deque[0] = nil
	w.deque = w.deque[1:]
	w.mu.Unlock()
	w.sched.took()
	return s
}

// steal scans sibling deques and takes the newest entry of the first
// non-empty one — the classic split: owners drain oldest-first, thieves
// take from the opposite end to minimize contention.
func (w *schedWorker) steal() *Session {
	n := len(w.sched.workers)
	for i := 1; i < n; i++ {
		v := w.sched.workers[(w.id+i)%n]
		v.mu.Lock()
		if l := len(v.deque); l > 0 {
			s := v.deque[l-1]
			v.deque[l-1] = nil
			v.deque = v.deque[:l-1]
			v.mu.Unlock()
			w.sched.steals.Add(1)
			w.sched.took()
			return s
		}
		v.mu.Unlock()
	}
	return nil
}

// took accounts one session leaving the deques.
func (sc *scheduler) took() {
	sc.mu.Lock()
	sc.runnable--
	sc.mu.Unlock()
}

// loop is the worker body: pop, steal, or park.
func (w *schedWorker) loop() {
	sc := w.sched
	defer sc.wg.Done()
	for {
		s := w.pop()
		if s == nil {
			s = w.steal()
		}
		if s != nil {
			w.dispatch(s)
			continue
		}
		sc.mu.Lock()
		for sc.runnable == 0 && !sc.closed {
			sc.idle++
			sc.cond.Wait()
			sc.idle--
		}
		if sc.closed && sc.runnable == 0 {
			sc.mu.Unlock()
			return
		}
		sc.mu.Unlock()
	}
}

// dispatch runs one session's queued batches, oldest first, until the
// queue drains (park) or the fairness budget is spent (resubmit behind
// the worker's other sessions). The budget is checked between batches —
// a batch is one gesture and executes atomically (see the package
// comment), so one dispatch runs at most budget events plus the
// remainder of the batch that crossed the line. Exactly one worker owns
// a session at a time; within the dispatch, execution order and Drain
// accounting are identical to the old per-session worker loop.
func (w *schedWorker) dispatch(s *Session) {
	sc := w.sched
	sc.dispatches.Add(1)
	budget := sc.manager.fairnessBudget()
	spent := 0
	s.pendingMu.Lock()
	s.schedState = schedRunning
	for {
		if len(s.batches) == 0 {
			s.schedState = schedParked
			s.pendingMu.Unlock()
			return
		}
		if spent >= budget {
			s.schedState = schedRunnable
			s.pendingMu.Unlock()
			sc.resubmit(w, s)
			return
		}
		batch := s.batches[0]
		s.batches[0] = nil
		s.batches = s.batches[1:]
		s.pendingMu.Unlock()

		s.runMu.Lock()
		s.kernel.Apply(batch)
		s.runMu.Unlock()
		if n := len(batch); n > 0 {
			spent += n
		} else {
			spent++ // empty batches still make progress against the budget
		}
		sc.manager.queuedBatches.Add(-1)

		s.pendingMu.Lock()
		s.pendingN--
		if s.pendingN == 0 {
			s.pendingCond.Broadcast()
		}
	}
}
