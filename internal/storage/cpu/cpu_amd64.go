//go:build amd64 && !purego

package cpu

// cpuid executes CPUID with the given leaf/subleaf (implemented in
// cpu_amd64.s).
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (implemented in cpu_amd64.s). Only valid when
// CPUID.1:ECX.OSXSAVE is set.
func xgetbv() (eax, edx uint32)

func init() {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		cpuidOSXSAVE = 1 << 27
		cpuidFMA     = 1 << 12
	)
	osxsave := ecx1&cpuidOSXSAVE != 0
	// YMM state needs XCR0 bits 1 (SSE) and 2 (AVX) both enabled by the OS.
	ymmOS := false
	if osxsave {
		xcr0, _ := xgetbv()
		ymmOS = xcr0&0x6 == 0x6
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const (
		cpuidAVX2    = 1 << 5
		cpuidAVX512F = 1 << 16
	)
	X86.HasAVX2 = ymmOS && ebx7&cpuidAVX2 != 0
	X86.HasFMA = ymmOS && ecx1&cpuidFMA != 0
	X86.HasAVX512F = ymmOS && ebx7&cpuidAVX512F != 0
}
