package touchos

import (
	"time"

	"dbtouch/internal/vclock"
)

// Handler processes one delivered touch event and returns how long the
// kernel stays busy handling it (virtual time). Any clock time the handler
// charges through data-access trackers is included by the kernel in the
// returned duration.
type Handler func(TouchEvent) time.Duration

// DispatchStats counts dispatcher activity.
type DispatchStats struct {
	// Delivered is the number of events handed to the kernel.
	Delivered int
	// Coalesced is the number of move samples dropped because a newer
	// sample for the same finger superseded them while the kernel was
	// busy.
	Coalesced int
}

// Dispatcher simulates the touch OS event queue. The digitizer produces
// raw samples at a fixed rate; the run loop delivers an event only when
// the application is idle, and while it is busy newer move samples for a
// finger replace older undelivered ones. This coalescing is the physical
// mechanism behind the paper's Figure 4: a slower gesture leaves the
// kernel idle more often, so more distinct touch locations get delivered
// and more tuples are processed.
type Dispatcher struct {
	clock     *vclock.Clock
	busyUntil time.Duration
	stats     DispatchStats

	barriers  []TouchEvent       // began/ended/cancelled, FIFO
	moves     map[int]TouchEvent // finger → latest undelivered move
	moveOrder []int              // fingers in arrival order
}

// NewDispatcher returns a dispatcher bound to the virtual clock.
func NewDispatcher(clock *vclock.Clock) *Dispatcher {
	return &Dispatcher{clock: clock, moves: make(map[int]TouchEvent)}
}

// Stats returns a snapshot of delivery counters.
func (d *Dispatcher) Stats() DispatchStats { return d.stats }

// ResetStats zeroes the counters.
func (d *Dispatcher) ResetStats() { d.stats = DispatchStats{} }

// BusyUntil reports when the kernel last becomes idle.
func (d *Dispatcher) BusyUntil() time.Duration { return d.busyUntil }

// Dispatch feeds a time-ordered batch of raw touch events through the
// queue, invoking handler for each delivered event, and returns the stats
// snapshot after the batch. It may be called repeatedly; kernel busy state
// carries over between calls.
//
// idle is invoked (if non-nil) with each idle gap [from, to) between
// deliveries, giving prefetchers background time (paper §2.6 "Prefetching
// Data": fetch expected entries while the gesture pauses or slows down).
func (d *Dispatcher) Dispatch(events []TouchEvent, handler Handler, idle func(from, to time.Duration)) DispatchStats {
	i := 0
	for i < len(events) || d.havePending() {
		// Target time for the next delivery opportunity.
		var t time.Duration
		if d.havePending() {
			t = d.busyUntil
		} else {
			t = events[i].Time
			if d.busyUntil > t {
				t = d.busyUntil
			}
		}
		// Absorb every arrival up to t into the queue.
		absorbed := false
		for i < len(events) && events[i].Time <= t {
			d.absorb(events[i])
			i++
			absorbed = true
		}
		if !d.havePending() {
			if !absorbed {
				// Arrivals exist but are all after t; jump forward.
				t = events[i].Time
				continue
			}
			continue
		}
		e, ok := d.pop()
		if !ok {
			continue
		}
		at := e.Time
		if d.busyUntil > at {
			at = d.busyUntil
		}
		if idle != nil && at > d.busyUntil {
			// The kernel sat idle from busyUntil to the event arrival.
			idle(d.busyUntil, at)
		}
		d.clock.AdvanceTo(at)
		busy := handler(e)
		if busy < 0 {
			busy = 0
		}
		d.busyUntil = at + busy
		d.clock.AdvanceTo(d.busyUntil)
		d.stats.Delivered++
	}
	return d.stats
}

// havePending reports whether any event awaits delivery.
func (d *Dispatcher) havePending() bool {
	return len(d.barriers) > 0 || len(d.moveOrder) > 0
}

// absorb enqueues a raw sample, coalescing moves per finger.
func (d *Dispatcher) absorb(e TouchEvent) {
	switch e.Phase {
	case TouchMoved:
		if _, ok := d.moves[e.Finger]; ok {
			d.stats.Coalesced++
		} else {
			d.moveOrder = append(d.moveOrder, e.Finger)
		}
		d.moves[e.Finger] = e
	case TouchEnded, TouchCancelled:
		// The end event carries the final location; any undelivered move
		// for the finger is superseded.
		if _, ok := d.moves[e.Finger]; ok {
			d.stats.Coalesced++
			delete(d.moves, e.Finger)
			d.removeMoveOrder(e.Finger)
		}
		d.barriers = append(d.barriers, e)
	default:
		d.barriers = append(d.barriers, e)
	}
}

// pop dequeues the next event in timestamp order, so a pending move
// sampled before a lifecycle barrier is delivered first (an Ended event
// must not overtake the final coalesced move of its own gesture).
func (d *Dispatcher) pop() (TouchEvent, bool) {
	var bestMove TouchEvent
	bestMoveIdx := -1
	for i, f := range d.moveOrder {
		e := d.moves[f]
		if bestMoveIdx == -1 || e.Time < bestMove.Time {
			bestMove, bestMoveIdx = e, i
		}
	}
	if len(d.barriers) > 0 {
		b := d.barriers[0]
		if bestMoveIdx == -1 || b.Time <= bestMove.Time {
			d.barriers = d.barriers[1:]
			return b, true
		}
	}
	if bestMoveIdx >= 0 {
		d.moveOrder = append(d.moveOrder[:bestMoveIdx], d.moveOrder[bestMoveIdx+1:]...)
		delete(d.moves, bestMove.Finger)
		return bestMove, true
	}
	return TouchEvent{}, false
}

func (d *Dispatcher) removeMoveOrder(finger int) {
	for i, f := range d.moveOrder {
		if f == finger {
			d.moveOrder = append(d.moveOrder[:i], d.moveOrder[i+1:]...)
			return
		}
	}
}
