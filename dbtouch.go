// Package dbtouch is a touch-driven database kernel for interactive data
// exploration, reproducing "dbTouch: Analytics at your Fingertips"
// (Idreos & Liarou, CIDR 2013).
//
// Data objects — columns and tables — live on a simulated touch screen.
// Queries are not statements but gestures: sliding a finger over an
// object scans it, runs running aggregates, or produces interactive
// summaries; pinching zooms the object (changing the data granularity a
// slide can reach); rotating flips the physical layout between row- and
// column-order. The user's touch stream controls the data flow; the
// kernel reacts to every touch, feeding from sample hierarchies,
// prefetching along the predicted gesture path, and adapting query plans
// on the fly.
//
// Everything runs on a virtual clock, so exploration sessions and
// benchmarks are deterministic and hardware independent.
//
// Quick start:
//
//	db := dbtouch.Open()
//	db.NewTable("readings").Float("temp", temps).MustCreate()
//	obj, _ := db.NewColumnObject("readings", "temp", 2, 2, 2, 10)
//	obj.Summarize(dbtouch.Avg, 10)
//	results := obj.Slide(2 * time.Second) // slide top to bottom for 2s
//
// Multiple users can explore the same data at once: Session forks a
// handle bound to a new exploration session over the same storage, with
// its own screen, virtual clock and result stream. Drive each session
// handle from its own goroutine; the storage underneath (columns,
// dictionaries, sample hierarchies) is shared and immutable, so sessions
// never contend on the hot path. See ARCHITECTURE.md for the ownership
// contract.
//
//	alice, _ := db.Session("alice")
//	bob, _ := db.Session("bob")
//	go exploreSensors(alice)
//	go exploreSensors(bob)
package dbtouch

import (
	"errors"
	"fmt"
	"io"
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/gesture"
	"dbtouch/internal/metrics"
	"dbtouch/internal/operator"
	"dbtouch/internal/session"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
	"dbtouch/internal/vclock"
)

// Re-exported result and configuration types. Aliases keep the internal
// kernel private while letting callers name everything they receive.
type (
	// Result is one answer popped up by one touch.
	Result = core.Result
	// ResultKind classifies results.
	ResultKind = core.ResultKind
	// Actions is the per-object touch/query configuration.
	Actions = core.Actions
	// Mode selects what a touch executes.
	Mode = core.Mode
	// AggKind selects an aggregate function.
	AggKind = operator.AggKind
	// Predicate is one WHERE conjunct.
	Predicate = operator.Predicate
	// Config is the kernel configuration (advanced use).
	Config = core.Config
	// Gesture is a serializable gesture description: build one with the
	// Object *Gesture methods (or gesture.New*), ship it anywhere —
	// a script, a wire protocol, a reconnecting client — and execute it
	// with Perform.
	Gesture = gesture.Gesture
	// GestureKind classifies a Gesture.
	GestureKind = gesture.Kind
	// ResultStream is a bounded concurrent cursor over emitted results;
	// see Subscribe.
	ResultStream = core.ResultStream
)

// ErrOverloaded reports an admission-control rejection from the session
// manager: Session past the admission cap, or gestures while the
// scheduler's backlog sits at its cap. Test with errors.Is and retry
// after a backoff; see docs/operations.md for the tuning knobs.
var ErrOverloaded = session.ErrOverloaded

// Gesture kinds.
const (
	GestureTap          = gesture.KindTap
	GestureSlide        = gesture.KindSlide
	GestureSlidePause   = gesture.KindSlidePause
	GestureBackAndForth = gesture.KindBackAndForth
	GestureZoom         = gesture.KindZoom
	GestureRotate       = gesture.KindRotate
	GestureMove         = gesture.KindMove
)

// Result kinds.
const (
	ScanValue      = core.ScanValue
	AggregateValue = core.AggregateValue
	SummaryValue   = core.SummaryValue
	TuplePeek      = core.TuplePeek
	GroupValue     = core.GroupValue
	JoinMatches    = core.JoinMatches
)

// Touch modes.
const (
	ModeScan      = core.ModeScan
	ModeAggregate = core.ModeAggregate
	ModeSummary   = core.ModeSummary
)

// Aggregate kinds.
const (
	Count  = operator.Count
	Sum    = operator.Sum
	Avg    = operator.Avg
	Min    = operator.Min
	Max    = operator.Max
	Var    = operator.Var
	Stddev = operator.Stddev
)

// Option adjusts the kernel configuration at Open time.
type Option func(*core.Config)

// WithScreen sizes the virtual screen in centimeters.
func WithScreen(w, h float64) Option {
	return func(c *core.Config) { c.ScreenW, c.ScreenH = w, h }
}

// WithUIOverhead sets the fixed per-touch UI cost (device speed knob).
func WithUIOverhead(d time.Duration) Option {
	return func(c *core.Config) { c.UIOverhead = d }
}

// WithSamples toggles sample-based storage.
func WithSamples(on bool) Option {
	return func(c *core.Config) { c.UseSamples = on }
}

// WithPrefetch toggles gesture-extrapolation prefetching.
func WithPrefetch(on bool) Option {
	return func(c *core.Config) { c.Prefetch = on }
}

// WithAdaptiveOptimizer toggles on-the-fly predicate reordering.
func WithAdaptiveOptimizer(on bool) Option {
	return func(c *core.Config) { c.AdaptiveOpt = on }
}

// WithResponseBound caps per-touch processing; the kernel degrades to
// coarser samples to respect it.
func WithResponseBound(d time.Duration) Option {
	return func(c *core.Config) { c.ResponseBound = d }
}

// WithCachePolicy selects "lru", "gesture-aware" or "none".
func WithCachePolicy(name string) Option {
	return func(c *core.Config) {
		switch name {
		case "gesture-aware":
			c.CachePolicy = core.PolicyGestureAware
		case "none":
			c.CachePolicy = core.PolicyNone
		default:
			c.CachePolicy = core.PolicyLRU
		}
	}
}

// WithConfig replaces the whole configuration (advanced use).
func WithConfig(cfg Config) Option {
	return func(c *core.Config) { *c = cfg }
}

// DB is a handle to one exploration session of a dbTouch instance.
// High-level calls (Slide, Tap, ZoomIn...) build serializable gesture
// descriptions and Perform them: each description synthesizes a
// digitizer-rate touch stream at the session's kernel. Open creates the
// instance with a default session; Session forks additional handles over
// the same shared storage. A handle is single-goroutine: drive each
// session's handle from its own goroutine (result streams from Subscribe
// may be consumed anywhere).
type DB struct {
	manager *session.Manager
	sess    *session.Session
	kernel  *core.Kernel
}

// Open creates a dbTouch instance with one default session.
func Open(opts ...Option) *DB {
	cfg := core.DefaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	mgr := session.NewManager(cfg)
	sess, err := mgr.Create("main")
	if err != nil {
		panic(err) // fresh manager: "main" cannot collide
	}
	return &DB{manager: mgr, sess: sess, kernel: sess.Kernel()}
}

// Session forks a handle bound to a new exploration session with the
// given id. The new session shares this instance's catalog and sample
// hierarchies (the immutable layer) but owns its own screen, virtual
// clock, dispatcher and result log — it starts at virtual time zero,
// unaffected by gestures on other sessions. Handles for different
// sessions may run on different goroutines concurrently. If the manager
// later evicts the session (Manager().Evict or a SetMaxSessions cap),
// the handle becomes inert: further gestures are dropped. Under
// admission control (Manager().SetAdmissionCap, or a backlog at the
// SetMaxQueuedBatches cap) the error is ErrOverloaded: no session was
// created, back off and retry.
func (db *DB) Session(id string) (*DB, error) {
	s, err := db.manager.Create(id)
	if err != nil {
		return nil, err
	}
	return &DB{manager: db.manager, sess: s, kernel: s.Kernel()}, nil
}

// Resume re-materializes an evicted or crashed session from its
// persisted request log and returns a fresh handle bound to it. It
// requires session durability (Manager().EnableDurability with a
// sessionlog store): the manager replays the session's checkpoint and
// log tail, landing it exactly where the old handle left off — a
// handle that went inert through eviction is replaced, not revived, so
// discard it and drive the returned one. Resuming a still-live session
// returns a second handle onto it without replaying anything.
func (db *DB) Resume(id string) (*DB, error) {
	if _, err := db.manager.Resume(id); err != nil {
		return nil, err
	}
	s, ok := db.manager.Get(id)
	if !ok {
		return nil, fmt.Errorf("dbtouch: session %q vanished after resume", id)
	}
	return &DB{manager: db.manager, sess: s, kernel: s.Kernel()}, nil
}

// SessionID reports which session this handle drives.
func (db *DB) SessionID() string { return db.sess.ID() }

// Manager exposes the session manager for advanced multi-user scenarios
// (eviction, session caps, event routing by id).
func (db *DB) Manager() *session.Manager { return db.manager }

// Kernel exposes the underlying kernel for advanced scenarios and the
// benchmark harness.
func (db *DB) Kernel() *core.Kernel { return db.kernel }

// Clock exposes the virtual clock.
func (db *DB) Clock() *vclock.Clock { return db.kernel.Clock() }

// Now reports the current virtual time.
func (db *DB) Now() time.Duration { return db.kernel.Clock().Now() }

// LoadCSV loads a table from CSV (header "name:TYPE,..." — see
// storage.ReadCSV) and registers it.
func (db *DB) LoadCSV(name string, r io.Reader) error {
	m, err := storage.ReadCSV(name, r)
	if err != nil {
		return err
	}
	db.kernel.Catalog().Register(m)
	return nil
}

// Tables lists loaded table names.
func (db *DB) Tables() []string { return db.kernel.Catalog().List() }

// TouchLatency returns the per-touch latency histogram.
func (db *DB) TouchLatency() *metrics.Histogram { return db.kernel.TouchLatency() }

// Results returns the retained results: everything still visible on
// screen plus all results of the latest gesture. Faded results are
// pruned between gestures; use OnResult to observe the full stream.
func (db *DB) Results() []Result { return db.kernel.Results() }

// OnResult registers a live result callback (front-end hook). Prefer
// Subscribe for anything that crosses goroutines or needs backpressure
// accounting: the callback runs inline on the kernel's goroutine.
func (db *DB) OnResult(fn func(Result)) { db.kernel.OnResult(fn) }

// Subscribe opens a bounded stream over every result this session emits
// from now on. The returned cursor is safe to consume from any
// goroutine (Next blocks, TryNext polls); when the consumer falls more
// than buffer results behind, the oldest are dropped and counted
// (ResultStream.Dropped) rather than stalling the touch pipeline.
// buffer <= 0 selects a default size. Close the stream to unsubscribe.
func (db *DB) Subscribe(buffer int) *ResultStream {
	return db.sess.Subscribe(buffer)
}

// Perform executes a gesture description on this session and returns the
// results it produced — the programmatic twin of a finger doing what the
// description says. Descriptions come from the Object *Gesture builders
// or from a decoded wire request; executing a description is
// byte-identical to calling the corresponding Object method. Like Apply,
// Perform on an evicted handle is inert (nil results, nil error); an
// invalid description or unknown target returns an error without
// touching the clock.
func (db *DB) Perform(g Gesture) ([]Result, error) {
	results, err := db.sess.Perform(g)
	if errors.Is(err, session.ErrClosed) {
		return nil, nil
	}
	return results, err
}

// Idle advances virtual time with no touch activity, letting background
// machinery (prefetch, layout conversion) use the gap — e.g. the user
// lifted the finger and is looking at the screen. Same session routing
// and eviction semantics as Apply.
func (db *DB) Idle(d time.Duration) {
	err := db.sess.Idle(d)
	if errors.Is(err, session.ErrClosed) {
		return
	}
	if err != nil {
		panic(err)
	}
}

// Apply pushes a raw touch-event stream through the session (advanced
// use; the Object methods synthesize streams for you). Routing through
// the session keeps the manager's recently-used ordering honest and
// serializes against any concurrent driver of the same session.
//
// If the session was evicted (manager cap or explicit Evict), the handle
// is inert: gestures are dropped and Apply returns nil. Mixing a facade
// handle with a Start()ed worker on the same session is a programming
// error and panics.
func (db *DB) Apply(events []touchos.TouchEvent) []Result {
	results, err := db.sess.Apply(events)
	if errors.Is(err, session.ErrClosed) {
		return nil
	}
	if err != nil {
		panic(err)
	}
	return results
}

// NewColumnObject places column of table on screen at (x, y) with size
// (w, h) centimeters and returns its handle. Tables resolve through the
// session's view: its own derived tables (promotions, projections) shadow
// the shared catalog.
func (db *DB) NewColumnObject(table, column string, x, y, w, h float64) (*Object, error) {
	m, err := db.kernel.Lookup(table)
	if err != nil {
		return nil, err
	}
	idx := m.ColumnIndex(column)
	if idx < 0 {
		return nil, fmt.Errorf("dbtouch: table %q has no column %q", table, column)
	}
	obj, err := db.kernel.CreateColumnObject(m, idx, touchos.NewRect(x, y, w, h))
	if err != nil {
		return nil, err
	}
	return &Object{db: db, inner: obj}, nil
}

// NewTableObject places the whole table on screen as a fat rectangle.
func (db *DB) NewTableObject(table string, x, y, w, h float64) (*Object, error) {
	m, err := db.kernel.Lookup(table)
	if err != nil {
		return nil, err
	}
	obj, err := db.kernel.CreateTableObject(m, touchos.NewRect(x, y, w, h))
	if err != nil {
		return nil, err
	}
	return &Object{db: db, inner: obj}, nil
}

// ProjectColumnOut drags the named column out of a table object into its
// own single-column object at (x, y, w, h) — the paper's §2.8 gesture for
// getting faster response times by touching only the needed data.
func (db *DB) ProjectColumnOut(table *Object, column string, x, y, w, h float64) (*Object, error) {
	idx := table.inner.Matrix().ColumnIndex(column)
	if idx < 0 {
		return nil, fmt.Errorf("dbtouch: no column %q in object %d", column, table.ID())
	}
	obj, err := db.kernel.ProjectColumnOut(table.inner, idx, touchos.NewRect(x, y, w, h))
	if err != nil {
		return nil, err
	}
	return &Object{db: db, inner: obj}, nil
}
