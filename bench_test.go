package dbtouch_test

import (
	"testing"
	"time"

	"dbtouch"
	"dbtouch/internal/experiments"
)

// Benchmarks regenerate every figure of the paper plus the ablations of
// DESIGN.md. Each bench reports the figure's headline quantity as custom
// metrics (virtual time, entries, etc.) alongside wall-clock cost of the
// simulation itself. Run the full paper-scale sweep with
//
//	go test -bench=. -benchmem
//
// or print the full series/tables with cmd/dbtouch-bench.
func benchScale() experiments.Scale {
	if testing.Short() {
		return experiments.Small()
	}
	// Paper scale is 10^7; benches use 10^6 so `go test -bench=.`
	// finishes in seconds. cmd/dbtouch-bench runs the full 10^7.
	return experiments.Scale{Rows: 1_000_000, ContestRows: 200_000, TableRows: 100_000}
}

// BenchmarkFig4aGestureSpeed regenerates Figure 4(a): entries returned
// vs gesture completion time (0.5s..4s slide over a 10cm column object).
func BenchmarkFig4aGestureSpeed(b *testing.B) {
	s := benchScale()
	var entries float64
	for i := 0; i < b.N; i++ {
		series := experiments.Fig4aGestureSpeed(s)
		entries = series.Points[len(series.Points)-1].Y
	}
	b.ReportMetric(entries, "entries@4s")
}

// BenchmarkFig4bObjectSize regenerates Figure 4(b): entries returned vs
// object size under progressive zoom-in at constant slide speed.
func BenchmarkFig4bObjectSize(b *testing.B) {
	s := benchScale()
	var entries float64
	for i := 0; i < b.N; i++ {
		series := experiments.Fig4bObjectSize(s)
		entries = series.Points[len(series.Points)-1].Y
	}
	b.ReportMetric(entries, "entries@20cm")
}

// BenchmarkContest regenerates the Appendix A exploration contest
// (dbTouch vs SQL DBMS time-to-insight on planted patterns).
func BenchmarkContest(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Contest(s)
	}
}

// BenchmarkSampleHierarchy regenerates Ext-1 (§2.6 sample-based storage).
func BenchmarkSampleHierarchy(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.SampleHierarchy(s)
	}
}

// BenchmarkPrefetch regenerates Ext-2 (§2.6 prefetching during pauses).
func BenchmarkPrefetch(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Prefetch(s)
	}
}

// BenchmarkCaching regenerates Ext-3 (§2.6 gesture-aware caching).
func BenchmarkCaching(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Caching(s)
	}
}

// BenchmarkSummaryK regenerates Ext-4 (§2.7 interactive summaries sweep).
func BenchmarkSummaryK(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.SummaryK(s)
	}
}

// BenchmarkRotateLayout regenerates Ext-5 (§2.8 incremental layout
// change).
func BenchmarkRotateLayout(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.RotateLayout(s)
	}
}

// BenchmarkJoinNonBlocking regenerates Ext-6 (§2.9 non-blocking joins).
func BenchmarkJoinNonBlocking(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.JoinNonBlocking(s)
	}
}

// BenchmarkAdaptiveOptimizer regenerates Ext-7 (§2.9 on-the-fly
// optimization).
func BenchmarkAdaptiveOptimizer(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.AdaptiveOptimizer(s)
	}
}

// BenchmarkRemote regenerates Ext-8 (§4 remote processing).
func BenchmarkRemote(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.RemoteProcessing(s)
	}
}

// BenchmarkZoomGranularity regenerates Ext-9 (§2.5 zoom granularity).
func BenchmarkZoomGranularity(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.ZoomGranularity(s)
	}
}

// BenchmarkIndexedSlide regenerates Ext-10 (§2.6 per-sample indexing).
func BenchmarkIndexedSlide(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.IndexedSlide(s)
	}
}

// BenchmarkTouchPipeline measures the raw kernel hot path: one slide
// touch through hit-test, recognition, mapping and a k=10 summary.
func BenchmarkTouchPipeline(b *testing.B) {
	db := dbtouch.Open()
	db.NewTable("t").Int("v", benchInts(1_000_000)).MustCreate()
	obj, err := db.NewColumnObject("t", "v", 2, 2, 2, 10)
	if err != nil {
		b.Fatal(err)
	}
	obj.Summarize(dbtouch.Avg, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj.Slide(500 * time.Millisecond)
	}
	b.ReportMetric(float64(db.TouchLatency().Count())/float64(b.N), "touches/op")
}

func benchInts(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}
