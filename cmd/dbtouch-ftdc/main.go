// Command dbtouch-ftdc decodes a flight-recorder capture (written by
// dbtouch-serve -ftdc-dir) back into analyzable form: NDJSON or CSV rows
// of every captured gauge, or an incident summary that differentiates
// the cumulative counters and surfaces where the capture got hot.
//
// Usage:
//
//	dbtouch-ftdc <capture-dir-or-file>             # incident summary
//	dbtouch-ftdc -format ndjson <dir>              # one JSON object per tick
//	dbtouch-ftdc -format csv <dir>                 # header + one row per tick
//	dbtouch-ftdc -format chunks <dir>              # per-chunk inventory
//
// The decode is exact: every value is the int64 the engine observed at
// that tick. Cumulative counters (steals, dispatches, append_epochs,
// kernel_bytes) are differentiated against ts_unix_ns only in the
// summary view; ndjson/csv emit the raw captured values.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	"dbtouch/internal/ftdc"
)

func main() {
	format := flag.String("format", "summary", "output: summary, ndjson, csv, chunks")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dbtouch-ftdc [-format summary|ndjson|csv|chunks] <capture-dir-or-file>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	info, err := os.Stat(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbtouch-ftdc:", err)
		os.Exit(1)
	}
	var chunks []ftdc.Chunk
	if info.IsDir() {
		chunks, err = ftdc.ReadDir(path)
	} else {
		chunks, err = ftdc.ReadFile(path)
	}
	if err != nil {
		// A damaged capture still yields its readable prefix; decode what
		// we have and say so.
		fmt.Fprintln(os.Stderr, "dbtouch-ftdc: warning:", err)
	}
	if len(chunks) == 0 {
		fmt.Fprintln(os.Stderr, "dbtouch-ftdc: no decodable chunks in", path)
		os.Exit(1)
	}
	switch *format {
	case "ndjson":
		err = emitNDJSON(chunks)
	case "csv":
		err = emitCSV(chunks)
	case "chunks":
		err = emitChunks(chunks)
	case "summary":
		err = emitSummary(chunks)
	default:
		fmt.Fprintf(os.Stderr, "dbtouch-ftdc: unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbtouch-ftdc:", err)
		os.Exit(1)
	}
}

func emitNDJSON(chunks []ftdc.Chunk) error {
	enc := json.NewEncoder(os.Stdout)
	for _, c := range chunks {
		for s := 0; s < c.SampleCount(); s++ {
			row := make(map[string]int64, len(c.Names))
			for m, name := range c.Names {
				row[name] = c.Columns[m][s]
			}
			if err := enc.Encode(row); err != nil {
				return err
			}
		}
	}
	return nil
}

func emitCSV(chunks []ftdc.Chunk) error {
	w := csv.NewWriter(os.Stdout)
	var header []string
	for _, c := range chunks {
		if !sameNames(header, c.Names) {
			header = c.Names
			if err := w.Write(header); err != nil {
				return err
			}
		}
		rec := make([]string, len(c.Names))
		for s := 0; s < c.SampleCount(); s++ {
			for m := range c.Names {
				rec[m] = strconv.FormatInt(c.Columns[m][s], 10)
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}

func emitChunks(chunks []ftdc.Chunk) error {
	for i, c := range chunks {
		fmt.Printf("chunk %d: %d metrics x %d samples", i, len(c.Names), c.SampleCount())
		if ts := c.Column("ts_unix_ns"); len(ts) > 0 {
			fmt.Printf("  span %.1fs", float64(ts[len(ts)-1]-ts[0])/1e9)
		}
		fmt.Println()
	}
	return nil
}

// counterMetrics are cumulative; the summary differentiates them into
// per-second rates against the capture's own timestamps.
var counterMetrics = map[string]bool{
	"steals": true, "dispatches": true, "evictions": true,
	"append_epochs": true, "retention_gens": true, "kernel_bytes": true,
}

func emitSummary(chunks []ftdc.Chunk) error {
	type series struct {
		vals []int64
		ts   []int64
	}
	byName := map[string]*series{}
	ticks := 0
	for _, c := range chunks {
		ts := c.Column("ts_unix_ns")
		ticks += c.SampleCount()
		for m, name := range c.Names {
			s := byName[name]
			if s == nil {
				s = &series{}
				byName[name] = s
			}
			s.vals = append(s.vals, c.Columns[m]...)
			s.ts = append(s.ts, ts...)
		}
	}
	tsAll := byName["ts_unix_ns"]
	if tsAll != nil && len(tsAll.vals) > 1 {
		span := float64(tsAll.vals[len(tsAll.vals)-1]-tsAll.vals[0]) / 1e9
		fmt.Printf("capture: %d ticks over %.1fs in %d chunks\n\n", ticks, span, len(chunks))
	} else {
		fmt.Printf("capture: %d ticks in %d chunks\n\n", ticks, len(chunks))
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		if name != "ts_unix_ns" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Printf("%-20s %12s %12s %12s   %s\n", "metric", "min", "max", "last", "hot (peak rate or level)")
	for _, name := range names {
		s := byName[name]
		mn, mx := s.vals[0], s.vals[0]
		for _, v := range s.vals {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		hot := ""
		if counterMetrics[name] {
			if rate, at, ok := peakRate(s.vals, s.ts); ok {
				hot = fmt.Sprintf("peak %.0f/s at t+%.0fs", rate, at)
				if name == "kernel_bytes" {
					hot = fmt.Sprintf("peak %.2f GB/s at t+%.0fs", rate/1e9, at)
				}
			}
		} else if peak, at, ok := peakLevel(s.vals, s.ts); ok {
			hot = fmt.Sprintf("peak %d at t+%.0fs", peak, at)
		}
		fmt.Printf("%-20s %12d %12d %12d   %s\n", name, mn, mx, s.vals[len(s.vals)-1], hot)
	}
	return nil
}

// peakRate differentiates a cumulative counter and returns its highest
// per-second rate and the offset (seconds from capture start) at which
// it occurred.
func peakRate(vals, ts []int64) (rate, atSec float64, ok bool) {
	if len(vals) < 2 || len(ts) != len(vals) {
		return 0, 0, false
	}
	for i := 1; i < len(vals); i++ {
		dt := float64(ts[i]-ts[i-1]) / 1e9
		if dt <= 0 {
			continue
		}
		r := float64(vals[i]-vals[i-1]) / dt
		if !ok || r > rate {
			rate, atSec, ok = r, float64(ts[i]-ts[0])/1e9, true
		}
	}
	return rate, atSec, ok
}

// peakLevel finds a gauge's maximum and when it occurred.
func peakLevel(vals, ts []int64) (peak int64, atSec float64, ok bool) {
	if len(vals) == 0 {
		return 0, 0, false
	}
	idx := 0
	for i, v := range vals {
		if v > vals[idx] {
			idx = i
		}
	}
	if len(ts) == len(vals) && len(ts) > 0 {
		return vals[idx], float64(ts[idx]-ts[0]) / 1e9, true
	}
	return vals[idx], 0, true
}

func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
