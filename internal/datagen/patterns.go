package datagen

import (
	"fmt"
	"math"
	"math/rand"
)

// PatternKind identifies a planted pattern for the exploration contest
// (paper Appendix A: "alternative data sets with a varying set of
// properties and patterns" that the audience must discover).
type PatternKind uint8

// Supported planted patterns.
const (
	// OutlierRegion shifts a contiguous region by a large offset.
	OutlierRegion PatternKind = iota
	// LevelShift raises everything after a change point.
	LevelShift
	// Spike plants a handful of extreme single values.
	Spike
	// TrendRegion superimposes a linear ramp on a region.
	TrendRegion
	// Correlated makes a secondary column track the primary in a region.
	Correlated
)

// String names the pattern kind.
func (k PatternKind) String() string {
	switch k {
	case OutlierRegion:
		return "outlier-region"
	case LevelShift:
		return "level-shift"
	case Spike:
		return "spike"
	case TrendRegion:
		return "trend-region"
	case Correlated:
		return "correlated"
	default:
		return fmt.Sprintf("PatternKind(%d)", uint8(k))
	}
}

// Pattern records where a pattern was planted so experiments can check
// whether an explorer found it.
type Pattern struct {
	Kind PatternKind
	// Start and End bound the affected tuple range [Start, End).
	Start, End int
	// Magnitude is the planted effect size in value units.
	Magnitude float64
}

// Contains reports whether tuple id lies inside the planted region.
func (p Pattern) Contains(id int) bool { return id >= p.Start && id < p.End }

// Overlaps reports whether [lo, hi) intersects the planted region.
func (p Pattern) Overlaps(lo, hi int) bool { return lo < p.End && hi > p.Start }

// Center returns the midpoint tuple of the region.
func (p Pattern) Center() int { return (p.Start + p.End) / 2 }

// Plant applies a pattern to data in place and returns its descriptor.
// frac positions the region start as a fraction of the column; width is
// the region length as a fraction. Magnitude scales with the data's
// spread so patterns remain discoverable across distributions.
func Plant(data []float64, kind PatternKind, frac, width float64, seed int64) Pattern {
	n := len(data)
	if n == 0 {
		return Pattern{Kind: kind}
	}
	start := clampInt(int(frac*float64(n)), 0, n-1)
	length := clampInt(int(width*float64(n)), 1, n-start)
	end := start + length
	spread := stddev(data)
	if spread == 0 {
		spread = 1
	}
	mag := 8 * spread
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case OutlierRegion:
		for i := start; i < end; i++ {
			data[i] += mag
		}
	case LevelShift:
		end = n
		for i := start; i < end; i++ {
			data[i] += mag
		}
	case Spike:
		// A few extreme bursts inside the region. Real transients span
		// consecutive readings, so each spike is a short run rather than
		// an isolated point (isolated points are invisible to any
		// sampling-based explorer).
		spikes := clampInt(length/1000, 3, 16)
		run := clampInt(length/50, 1, 2000)
		for s := 0; s < spikes; s++ {
			i := start + rng.Intn(maxIntPat(1, length-run))
			for j := 0; j < run && i+j < end; j++ {
				data[i+j] += mag * 4
			}
		}
	case TrendRegion:
		for i := start; i < end; i++ {
			data[i] += mag * float64(i-start) / float64(length)
		}
	case Correlated:
		// Correlation involves a second column; for a single column we
		// plant a smooth bump that PlantCorrelated mirrors.
		for i := start; i < end; i++ {
			phase := math.Pi * float64(i-start) / float64(length)
			data[i] += mag * math.Sin(phase)
		}
	}
	return Pattern{Kind: kind, Start: start, End: end, Magnitude: mag}
}

// PlantCorrelated plants a matched bump in two columns over the same
// region so that a join/correlation explorer can detect it.
func PlantCorrelated(a, b []float64, frac, width float64, seed int64) Pattern {
	p := Plant(a, Correlated, frac, width, seed)
	if len(b) == 0 {
		return p
	}
	n := len(b)
	for i := p.Start; i < p.End && i < n; i++ {
		phase := math.Pi * float64(i-p.Start) / float64(p.End-p.Start)
		b[i] += p.Magnitude * math.Sin(phase)
	}
	return p
}

// stddev computes the sample standard deviation of data.
func stddev(data []float64) float64 {
	if len(data) < 2 {
		return 0
	}
	var sum float64
	for _, v := range data {
		sum += v
	}
	mean := sum / float64(len(data))
	var ss float64
	for _, v := range data {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(data)-1))
}

func maxIntPat(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
