// Package sample implements sample-based storage (paper §2.6 "Sample-based
// Storage", after Sciborg's hierarchies of samples): instead of always
// feeding from base data, dbTouch keeps a hierarchy of progressively
// coarser stored samples and serves each touch from the level matched to
// the object size and gesture speed, "minimizing the auxiliary data
// reads". Level 0 is base data; level i keeps every 2^i-th value as its
// own dense column with its own access tracker, so reading at a coarse
// granularity touches a physically small array.
//
// The hierarchy is split along the shared-immutable vs per-session line:
// a Shared holds the sample columns and their lazily built span statistics
// (prefix sums, zone maps) — built once, safe for any number of concurrent
// exploration sessions — while a Hierarchy is one session's view of a
// Shared, carrying the mutable access trackers that charge that session's
// virtual clock. BuildShared + Attach is the multi-session path; Build
// remains the single-session convenience that does both.
package sample

import (
	"fmt"
	"math"
	"sync"
	"time"

	"dbtouch/internal/iomodel"
	"dbtouch/internal/storage"
	"dbtouch/internal/vclock"
)

// sharedLevel is the immutable half of one stored sample level: the
// sample column plus its lazily built span statistics, shared by every
// session attached to the same Shared.
type sharedLevel struct {
	// stride is the base-tuple distance between consecutive entries.
	stride int
	// col holds the sample values densely (immutable once built).
	col *storage.Column

	// once guards the single-flight build of span: the first session to
	// aggregate a span on this level builds the statistics; concurrent
	// sessions block briefly and then share the result.
	once sync.Once
	span *spanStats
}

// stats returns the level's span metadata, building it on first use.
// blockValues sizes the zone-map blocks; the first caller's cost-model
// block size wins, which only affects wall-clock work (correctness and
// virtual-time charging are independent of the blocking).
func (sl *sharedLevel) stats(blockValues int) *spanStats {
	sl.once.Do(func() {
		n := sl.col.Len()
		blockLen := blockValues
		if blockLen <= 0 {
			blockLen = 1024
		}
		s := &spanStats{
			blockMin: make([]float64, (n+blockLen-1)/blockLen),
			blockMax: make([]float64, (n+blockLen-1)/blockLen),
			blockLen: blockLen,
		}
		for b := range s.blockMin {
			lo, hi := b*blockLen, (b+1)*blockLen
			min, max, _ := sl.col.MinMaxRange(lo, hi)
			s.blockMin[b], s.blockMax[b] = min, max
		}
		// Integer-backed columns keep exact int64 prefix sums: span sums
		// of int data are exact at any magnitude and the build runs on
		// native integer adds. Float columns accumulate strictly left to
		// right so span sums stay bit-identical to a scalar loop whenever
		// the values make that loop exact.
		if sl.col.Type() != storage.Float64 {
			ip := make([]int64, n+1)
			sl.col.PrefixInts(ip)
			s.iprefix = ip
		} else {
			s.prefix = make([]float64, n+1)
			acc := 0.0
			idx := 1
			sl.col.AddRangeTo(0, n, func(v float64) {
				acc += v
				s.prefix[idx] = acc
				idx++
			})
		}
		sl.span = s
	})
	return sl.span
}

// spanStats is precomputed aggregation metadata over one level's column:
// prefix sums make span sums a subtraction, and per-block min/max arrays
// (zone-map style, aligned to the cost model's block size) reduce span
// min/max to edge scans plus one comparison per interior block. The
// metadata is auxiliary (like an index): building it charges no virtual
// time, and the cost model still charges every span read through the
// level's tracker as if the entries themselves were scanned.
type spanStats struct {
	// prefix[i] is the sum of the float coercion of entries [0, i),
	// computed left to right (float columns only; nil otherwise).
	prefix []float64
	// iprefix[i] is the exact int64 sum of entries [0, i) for
	// integer-backed columns (int values, bool 0/1, string codes) — span
	// sums of integer data are exact at any magnitude (nil for floats).
	iprefix []int64
	// blockMin/blockMax aggregate entries [b*blockLen, (b+1)*blockLen).
	blockMin, blockMax []float64
	blockLen           int
}

// Shared is the immutable half of a sample hierarchy: the base column and
// its stored sample levels, without any per-session state. One Shared is
// built per (column, depth) and attached by every session exploring that
// column; all methods are safe for concurrent use.
type Shared struct {
	levels []*sharedLevel // levels[0] is base data (stride 1)
}

// BuildShared constructs the immutable sample levels over base with
// maxLevels levels above the base (so maxLevels=0 means base only). Each
// level halves the previous one; construction stops early when a level
// would drop below minLen entries (default 64).
func BuildShared(base *storage.Column, maxLevels int) (*Shared, error) {
	if base == nil || base.Len() == 0 {
		return nil, fmt.Errorf("sample: empty base column")
	}
	const minLen = 64
	s := &Shared{}
	s.levels = append(s.levels, &sharedLevel{stride: 1, col: base})
	prev := base
	for lvl := 1; lvl <= maxLevels; lvl++ {
		if prev.Len()/2 < minLen {
			break
		}
		col := prev.Strided(0, 2)
		s.levels = append(s.levels, &sharedLevel{stride: 1 << lvl, col: col})
		prev = col
	}
	return s, nil
}

// NumLevels reports the number of stored levels including base.
func (s *Shared) NumLevels() int { return len(s.levels) }

// Attach builds one session's view of the shared hierarchy: every level
// gets a fresh tracker charging the session's clock with params, so
// sessions account I/O independently while reading the same arrays.
func (s *Shared) Attach(clock *vclock.Clock, params iomodel.Params, policy func() iomodel.EvictionPolicy) *Hierarchy {
	newPolicy := func() iomodel.EvictionPolicy {
		if policy == nil {
			return nil
		}
		return policy()
	}
	h := &Hierarchy{shared: s, clock: clock, params: params, newPolicy: newPolicy}
	for _, sl := range s.levels {
		h.levels = append(h.levels, &Level{
			Stride:  sl.stride,
			Col:     sl.col,
			Tracker: iomodel.New(clock, params, newPolicy()),
			shared:  sl,
		})
	}
	return h
}

// Level is one session's handle on one stored sample level: the shared
// immutable column plus the session's own access tracker.
type Level struct {
	// Stride is the base-tuple distance between consecutive sample
	// entries (2^level).
	Stride int
	// Col holds the sample values densely (shared across sessions;
	// treat as read-only).
	Col *storage.Column
	// Tracker charges access costs for this level's array against the
	// owning session's clock.
	Tracker *iomodel.Tracker

	// shared backs the lazily built span statistics.
	shared *sharedLevel
}

// stats returns the level's span metadata via the shared single-flight
// build.
func (l *Level) stats() *spanStats {
	return l.shared.stats(l.Tracker.Params().BlockValues)
}

// BaseLen reports how many base tuples the level spans.
func (l *Level) BaseLen() int { return l.Col.Len() * l.Stride }

// Hierarchy is one session's view of a column's sample hierarchy: shared
// immutable sample columns, per-session trackers. It is owned by one
// session and is not safe for concurrent use (the shared half is).
type Hierarchy struct {
	shared *Shared
	levels []*Level // levels[0] is base data (stride 1)

	// Attach parameters, retained so Rebind can mint trackers for levels
	// that appear when a live table grows.
	clock     *vclock.Clock
	params    iomodel.Params
	newPolicy func() iomodel.EvictionPolicy
}

// Build constructs a single-session hierarchy over base: BuildShared
// followed by Attach. Multi-session callers build the Shared once and
// attach per session instead.
func Build(base *storage.Column, maxLevels int, clock *vclock.Clock, params iomodel.Params, policy func() iomodel.EvictionPolicy) (*Hierarchy, error) {
	s, err := BuildShared(base, maxLevels)
	if err != nil {
		return nil, err
	}
	return s.Attach(clock, params, policy), nil
}

// Shared exposes the immutable half for attaching further sessions.
func (h *Hierarchy) Shared() *Shared { return h.shared }

// Rebind swaps the hierarchy onto a new Shared (a newer live-table
// snapshot) while keeping the session's warmth: levels present in both
// hierarchies keep their trackers — the cost model's cache state is the
// session's touch history, which append-only growth does not invalidate —
// levels that appear as the table grows get fresh trackers, and levels
// past the new depth are dropped (only possible after compaction shrinks
// the table).
func (h *Hierarchy) Rebind(s *Shared) {
	n := len(s.levels)
	if n < len(h.levels) {
		h.levels = h.levels[:n]
	}
	for i, sl := range s.levels {
		if i < len(h.levels) {
			h.levels[i].Stride = sl.stride
			h.levels[i].Col = sl.col
			h.levels[i].shared = sl
			continue
		}
		h.levels = append(h.levels, &Level{
			Stride:  sl.stride,
			Col:     sl.col,
			Tracker: iomodel.New(h.clock, h.params, h.newPolicy()),
			shared:  sl,
		})
	}
	h.shared = s
}

// NumLevels reports the number of stored levels including base.
func (h *Hierarchy) NumLevels() int { return len(h.levels) }

// Level returns stored level i (0 = base).
func (h *Hierarchy) Level(i int) (*Level, error) {
	if i < 0 || i >= len(h.levels) {
		return nil, fmt.Errorf("sample: no level %d (have %d)", i, len(h.levels))
	}
	return h.levels[i], nil
}

// Base returns the base column.
func (h *Hierarchy) Base() *storage.Column { return h.levels[0].Col }

// SelectLevel picks the coarsest level whose stride does not exceed the
// expected base-tuple gap between consecutive touches, so consecutive
// touches land on adjacent-ish sample entries and no finer data is pulled
// than the gesture can observe.
//
// The expected gap follows from the paper's granularity model: an object
// of extent cm moving under a gesture whose touches arrive every
// interTouch seconds at speed cmPerSec covers (cmPerSec·interTouch) cm per
// touch, i.e. gap = rows · cmPerSec · interTouch / extent base tuples.
func (h *Hierarchy) SelectLevel(extentCm, cmPerSec float64, interTouch time.Duration) int {
	if extentCm <= 0 || cmPerSec <= 0 || interTouch <= 0 {
		return 0
	}
	rows := h.levels[0].Col.Len()
	gap := float64(rows) * cmPerSec * interTouch.Seconds() / extentCm
	return h.SelectLevelForGap(gap)
}

// SelectLevelForGap picks the coarsest level whose stride does not exceed
// an already-known base-tuple gap between consecutive touches — the
// direct form of SelectLevel for callers that observe the gap instead of
// deriving it from screen geometry (the touch extrapolator measures it
// from the gesture's own history, which folds in the real sensor rate
// and mapping instead of the geometric model's assumptions).
func (h *Hierarchy) SelectLevelForGap(gap float64) int {
	if gap < 1 || math.IsNaN(gap) {
		return 0
	}
	// Clamp before the int conversion: int(+Inf) is implementation-defined.
	lv := math.Floor(math.Log2(gap))
	if lv >= float64(len(h.levels)) {
		return len(h.levels) - 1
	}
	level := int(lv)
	if level < 0 {
		level = 0
	}
	if level >= len(h.levels) {
		level = len(h.levels) - 1
	}
	return level
}

// ValueAt reads the sample value nearest base tuple baseID from level,
// charging that level's tracker, and returns the value with the base id
// it actually represents.
func (h *Hierarchy) ValueAt(baseID, level int) (float64, int, error) {
	l, err := h.Level(level)
	if err != nil {
		return 0, 0, err
	}
	idx := baseID / l.Stride
	if idx < 0 {
		idx = 0
	}
	if idx >= l.Col.Len() {
		idx = l.Col.Len() - 1
	}
	l.Tracker.Access(idx)
	return l.Col.Float(idx), idx * l.Stride, nil
}

// ScanAt reads the typed value nearest base tuple baseID from level,
// charging that level's tracker, and returns the value with the base id it
// actually represents (plain-scan path; ValueAt is the aggregation path).
func (h *Hierarchy) ScanAt(baseID, level int) (storage.Value, int, error) {
	l, err := h.Level(level)
	if err != nil {
		return storage.Value{}, 0, err
	}
	idx := baseID / l.Stride
	if idx < 0 {
		idx = 0
	}
	if idx >= l.Col.Len() {
		idx = l.Col.Len() - 1
	}
	l.Tracker.Access(idx)
	return l.Col.Value(idx), idx * l.Stride, nil
}

// WindowAgg aggregates sample entries of level covering base range
// [lo, hi), charging per entry, and returns (sum, count, min, max).
func (h *Hierarchy) WindowAgg(lo, hi, level int) (sum float64, n int, min, max float64, err error) {
	l, err := h.Level(level)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	from := lo / l.Stride
	to := (hi + l.Stride - 1) / l.Stride
	if from < 0 {
		from = 0
	}
	if to > l.Col.Len() {
		to = l.Col.Len()
	}
	min, max = math.Inf(1), math.Inf(-1)
	for i := from; i < to; i++ {
		l.Tracker.Access(i)
		v := l.Col.Float(i)
		sum += v
		n++
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return sum, n, min, max, nil
}

// SpanEntries aggregates sample entries [from, to) of level as one unit:
// the sum comes from the level's prefix-sum array, min/max from the
// per-block zone maps plus edge scans, and the whole span is charged
// through the tracker's ranged accounting — identical virtual cost to a
// per-entry scan, a fraction of the wall-clock work. Integer-backed
// columns difference exact int64 prefix sums, so span sums are exact at
// any magnitude and bit-identical to WindowAgg's scalar loop whenever
// that loop is itself exact; float sums may differ in the last ulp
// (different association order).
func (h *Hierarchy) SpanEntries(from, to, level int) (sum float64, n int, min, max float64, err error) {
	l, err := h.Level(level)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if from < 0 {
		from = 0
	}
	if to > l.Col.Len() {
		to = l.Col.Len()
	}
	min, max = math.Inf(1), math.Inf(-1)
	if from >= to {
		return 0, 0, min, max, nil
	}
	l.Tracker.AccessRange(from, to)
	s := l.stats()
	if s.iprefix != nil {
		sum = float64(s.iprefix[to] - s.iprefix[from])
	} else {
		sum = s.prefix[to] - s.prefix[from]
	}
	n = to - from
	firstB, lastB := from/s.blockLen, (to-1)/s.blockLen
	if firstB == lastB {
		min, max, _ = l.Col.MinMaxRange(from, to)
		return sum, n, min, max, nil
	}
	// Head and tail partial blocks scan natively; interior blocks read
	// the zone maps.
	headHi := (firstB + 1) * s.blockLen
	min, max, _ = l.Col.MinMaxRange(from, headHi)
	for b := firstB + 1; b < lastB; b++ {
		if s.blockMin[b] < min {
			min = s.blockMin[b]
		}
		if s.blockMax[b] > max {
			max = s.blockMax[b]
		}
	}
	tailLo := lastB * s.blockLen
	tmin, tmax, _ := l.Col.MinMaxRange(tailLo, to)
	if tmin < min {
		min = tmin
	}
	if tmax > max {
		max = tmax
	}
	return sum, n, min, max, nil
}

// SpanAgg is the vectorized WindowAgg: it aggregates the sample entries
// of level covering base range [lo, hi) via SpanEntries, using the exact
// same base→entry conversion as WindowAgg so the two are interchangeable.
func (h *Hierarchy) SpanAgg(lo, hi, level int) (sum float64, n int, min, max float64, err error) {
	l, err := h.Level(level)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	from := lo / l.Stride
	to := (hi + l.Stride - 1) / l.Stride
	return h.SpanEntries(from, to, level)
}

// Promote adds a stored sample covering base range [lo, hi) at base
// resolution as a new finest-of-region level. It models §2.6 "Caching
// Data": heavily revisited regions get their own materialized copy so
// future queries at similar granularity feed from it. The returned column
// is also registered as an extra level with stride 1 offset lo — callers
// address it directly.
func (h *Hierarchy) Promote(lo, hi int, clock *vclock.Clock, params iomodel.Params) (*storage.Column, error) {
	base := h.Base()
	if lo < 0 || hi > base.Len() || lo >= hi {
		return nil, fmt.Errorf("sample: promote range [%d,%d) out of bounds for %d", lo, hi, base.Len())
	}
	col, err := base.Slice(lo, hi)
	if err != nil {
		return nil, err
	}
	return col.Clone(), nil
}

// TotalStats sums tracker stats across levels.
func (h *Hierarchy) TotalStats() iomodel.Stats {
	var total iomodel.Stats
	for _, l := range h.levels {
		s := l.Tracker.Stats()
		total.ColdFetches += s.ColdFetches
		total.WarmHits += s.WarmHits
		total.ValuesRead += s.ValuesRead
		total.Prefetched += s.Prefetched
		total.Evictions += s.Evictions
		total.BytesRead += s.BytesRead
	}
	return total
}

// Cool drops warmth on every level (cold-start for experiments).
func (h *Hierarchy) Cool() {
	for _, l := range h.levels {
		l.Tracker.Cool()
	}
}

// ResetStats zeroes counters on every level.
func (h *Hierarchy) ResetStats() {
	for _, l := range h.levels {
		l.Tracker.ResetStats()
	}
}
