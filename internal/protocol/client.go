package protocol

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"dbtouch/internal/gesture"
)

// Convenience calls wrapping Client.Do, one per protocol op.

// Open creates a session on the server.
func (c *Client) Open(session string) error {
	_, err := c.Do(Request{Op: OpOpen, Session: session})
	return err
}

// Evict removes a session on the server.
func (c *Client) Evict(session string) error {
	_, err := c.Do(Request{Op: OpEvict, Session: session})
	return err
}

// CreateColumn places one column of a table on the session's screen and
// binds it to name, returning the kernel object id.
func (c *Client) CreateColumn(session, name, table, column string, x, y, w, h float64) (int, error) {
	resp, err := c.Do(Request{
		Op: OpCreate, Session: session, Object: name,
		Create: &CreateSpec{Table: table, Column: column, X: x, Y: y, W: w, H: h},
	})
	return resp.ObjectID, err
}

// CreateTable places a whole table on the session's screen under name.
func (c *Client) CreateTable(session, name, table string, x, y, w, h float64) (int, error) {
	resp, err := c.Do(Request{
		Op: OpCreate, Session: session, Object: name,
		Create: &CreateSpec{Table: table, X: x, Y: y, W: w, H: h},
	})
	return resp.ObjectID, err
}

// Configure applies a touch-configuration delta to a named object.
func (c *Client) Configure(session, name string, spec ActionsSpec) error {
	_, err := c.Do(Request{Op: OpConfigure, Session: session, Object: name, Actions: &spec})
	return err
}

// Perform executes a gesture description against a named object and
// returns the frames it produced. The description's Target is stamped
// server-side from the name.
func (c *Client) Perform(session, name string, g gesture.Gesture) ([]ResultFrame, error) {
	resp, err := c.Do(Request{Op: OpPerform, Session: session, Object: name, Gesture: &g})
	return resp.Results, err
}

// Append appends rows to a live table on the server and returns the new
// snapshot epoch and total row count. Cells are coerced server-side
// (JSON numbers arrive as float64; integer columns coerce them back).
// A rate-limited append surfaces as an overloaded error with Retry-After.
func (c *Client) Append(table string, rows [][]any) (epoch uint64, total int, err error) {
	resp, err := c.Do(Request{Op: OpAppend, Table: table, Rows: rows})
	if err != nil {
		return 0, 0, err
	}
	return resp.Epoch, resp.Rows, nil
}

// Idle advances the session's virtual time with no touch activity.
func (c *Client) Idle(session string, d time.Duration) error {
	_, err := c.Do(Request{Op: OpIdle, Session: session, Idle: d})
	return err
}

// Stats snapshots the server's session manager.
func (c *Client) Stats() (StatsFrame, error) {
	resp, err := c.Do(Request{Op: OpStats})
	if err != nil {
		return StatsFrame{}, err
	}
	if resp.Stats == nil {
		return StatsFrame{}, fmt.Errorf("protocol: stats response carried no stats")
	}
	return *resp.Stats, nil
}

// Stream subscribes to a session's live results and invokes fn for each
// frame until fn returns false, the context is cancelled, or the server
// closes the stream. buffer sizes the server-side ring (0 = default).
func (c *Client) Stream(ctx context.Context, session string, buffer int, fn func(ResultFrame) bool) error {
	u := c.Base + "/stream?session=" + url.QueryEscape(session)
	if buffer > 0 {
		u += "&buffer=" + strconv.Itoa(buffer)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("protocol: stream: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), maxRequestBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var frame ResultFrame
		if err := json.Unmarshal(line, &frame); err != nil {
			return fmt.Errorf("protocol: stream frame: %w", err)
		}
		if !fn(frame) {
			return nil
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}
