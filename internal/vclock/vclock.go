// Package vclock provides a virtual clock for deterministic simulation.
//
// All dbTouch latency accounting runs on virtual time: touch events carry
// virtual timestamps, the kernel charges simulated processing time per data
// access, and benchmarks measure virtual durations. This removes the host
// machine from the measurements and makes every experiment reproducible.
package vclock

import "time"

// Clock is a manually advanced virtual clock. The zero value is a clock at
// time zero, ready to use. Clock is not safe for concurrent use; the
// simulation is single-threaded by design (one touch at a time, as on a
// real digitizer).
type Clock struct {
	now time.Duration
}

// New returns a clock starting at virtual time zero.
func New() *Clock { return &Clock{} }

// Now reports the current virtual time as an offset from session start.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Negative durations are ignored:
// virtual time never goes backwards.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo moves the clock forward to t if t is in the future; it is a
// no-op otherwise and reports whether the clock moved.
func (c *Clock) AdvanceTo(t time.Duration) bool {
	if t > c.now {
		c.now = t
		return true
	}
	return false
}

// Reset rewinds the clock to zero for reuse across experiment repetitions.
func (c *Clock) Reset() { c.now = 0 }

// Stopwatch measures elapsed virtual time between Start and Elapsed calls.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// NewStopwatch returns a stopwatch bound to clock, already started.
func NewStopwatch(clock *Clock) *Stopwatch {
	return &Stopwatch{clock: clock, start: clock.Now()}
}

// Restart resets the stopwatch origin to the current virtual time.
func (s *Stopwatch) Restart() { s.start = s.clock.Now() }

// Elapsed reports virtual time since the last Restart (or construction).
func (s *Stopwatch) Elapsed() time.Duration { return s.clock.Now() - s.start }
