package session

import (
	"sync"
	"testing"
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/gesture"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
)

// Regression for the snapshot-pinning race at session eviction: an
// LRU-evicted session that is mid-batch must hold its pinned snapshot
// until the batch drains, and must release it exactly once afterwards —
// never while another session still depends on the pin machinery, and
// never leak it. The schedule is deterministic: a blocking OnResult gate
// holds session one inside a batch while the table advances an epoch and
// session two pins the new version.

func livePinSlide(start time.Duration) []touchos.TouchEvent {
	var synth gesture.Synth
	x := equivFrame.Origin.X + equivFrame.Size.W/2
	return synth.Slide(
		touchos.Point{X: x, Y: equivFrame.Origin.Y + 0.1},
		touchos.Point{X: x, Y: equivFrame.Origin.Y + equivFrame.Size.H - 0.1},
		start, 500*time.Millisecond,
	)
}

func TestEvictedSessionReleasesPinAfterDrain(t *testing.T) {
	m := NewManager(core.DefaultConfig())
	vals := make([]int64, 4096)
	for i := range vals {
		vals[i] = int64(i % 500)
	}
	tb, err := storage.NewTable("events", storage.NewIntColumn("v", vals))
	if err != nil {
		t.Fatal(err)
	}
	m.Catalog().RegisterLive(tb)
	if err := m.SetWorkers(2); err != nil {
		t.Fatal(err)
	}

	mkSession := func(id string) *Session {
		s, err := m.Create(id)
		if err != nil {
			t.Fatal(err)
		}
		obj, err := s.CreateColumnObject("events", "v", equivFrame)
		if err != nil {
			t.Fatal(err)
		}
		obj.SetActions(core.Actions{Mode: core.ModeScan})
		return s
	}
	s1 := mkSession("s1")
	s2 := mkSession("s2")

	// Gate: s1's first result parks its worker inside the batch, with the
	// epoch-1 pin held.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s1.OnResult(func(r core.Result) {
		once.Do(func() {
			close(entered)
			<-release
		})
	})

	s1.Start()
	if _, err := m.Dispatch("s1", livePinSlide(0)); err != nil {
		t.Fatal(err)
	}
	<-entered

	// The table moves on while s1 is parked: epoch 2 publishes, and s2
	// (synchronous) pins it with a batch of its own.
	if _, err := m.Append("events", [][]storage.Value{{storage.IntValue(7)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Dispatch("s2", livePinSlide(0)); err != nil {
		t.Fatal(err)
	}

	pinned := m.LiveStore().PinnedEpochs(tb)
	if !containsEpoch(pinned, 1) || !containsEpoch(pinned, 2) {
		t.Fatalf("mid-batch pins = %v, want both epochs 1 and 2", pinned)
	}

	// Evict s1 while it is parked mid-batch. Eviction must block in the
	// drain, keeping the pin alive until the batch completes — releasing
	// early would let version pruning run while s1's statistics views are
	// still in use.
	evicted := make(chan bool, 1)
	go func() { evicted <- m.Evict("s1") }()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-evicted:
		t.Fatal("eviction completed while the session was mid-batch")
	default:
	}
	if pinned := m.LiveStore().PinnedEpochs(tb); !containsEpoch(pinned, 1) {
		t.Fatalf("pin released mid-batch: %v", pinned)
	}

	close(release)
	if ok := <-evicted; !ok {
		t.Fatal("Evict reported the session missing")
	}
	pinned = m.LiveStore().PinnedEpochs(tb)
	if containsEpoch(pinned, 1) {
		t.Fatalf("evicted session leaked its pin: %v", pinned)
	}
	if !containsEpoch(pinned, 2) {
		t.Fatalf("s2's pin vanished with s1's eviction: %v", pinned)
	}

	// The surviving session keeps working: another batch repins the
	// current epoch and produces results.
	var got int
	s2.OnResult(func(r core.Result) { got++ })
	if _, err := m.Dispatch("s2", livePinSlide(3*time.Second)); err != nil {
		t.Fatal(err)
	}
	if got == 0 {
		t.Fatal("survivor session produced no results after eviction")
	}

	// Idempotence: the session is gone from the manager, and closing it
	// again is a no-op rather than a double release.
	if m.Evict("s1") {
		t.Fatal("second eviction found the session")
	}
	s1.Close()
	m.Close()
}

func containsEpoch(eps []uint64, e uint64) bool {
	for _, x := range eps {
		if x == e {
			return true
		}
	}
	return false
}
