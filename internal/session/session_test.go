package session

import (
	"runtime"
	"testing"
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/gesture"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
)

// testManager builds a manager with a registered int table of n rows.
func testManager(t testing.TB, n int) *Manager {
	t.Helper()
	m := NewManager(core.DefaultConfig())
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i % 997)
	}
	mx, err := storage.NewMatrix("t", storage.NewIntColumn("v", data))
	if err != nil {
		t.Fatal(err)
	}
	m.Catalog().Register(mx)
	return m
}

// slideEvents synthesizes a top-to-bottom slide over the standard object
// frame, starting at the session's current virtual time.
func slideEvents(s *Session, dur time.Duration) []touchos.TouchEvent {
	start := s.Kernel().Clock().Now()
	var synth gesture.Synth
	return synth.Slide(
		touchos.Point{X: 3, Y: 2.02},
		touchos.Point{X: 3, Y: 11.98},
		start, dur,
	)
}

func newColumnSession(t testing.TB, m *Manager, id string) *Session {
	t.Helper()
	s, err := m.Create(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateColumnObject("t", "v", touchos.NewRect(2, 2, 2, 10)); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestManagerCreateGetEvict(t *testing.T) {
	m := testManager(t, 10_000)
	s, err := m.Create("alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("alice"); err == nil {
		t.Fatal("duplicate Create succeeded")
	}
	got, ok := m.Get("alice")
	if !ok || got != s {
		t.Fatal("Get did not return the created session")
	}
	if m.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", m.Len())
	}
	if !m.Evict("alice") {
		t.Fatal("Evict reported missing session")
	}
	if m.Evict("alice") {
		t.Fatal("second Evict reported success")
	}
	if _, ok := m.Get("alice"); ok {
		t.Fatal("evicted session still resolvable")
	}
}

func TestDispatchRoutesToSession(t *testing.T) {
	m := testManager(t, 50_000)
	a := newColumnSession(t, m, "a")
	b := newColumnSession(t, m, "b")

	resA, err := m.Dispatch("a", slideEvents(a, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(resA) == 0 {
		t.Fatal("session a produced no results")
	}
	if len(b.Results()) != 0 {
		t.Fatal("dispatch to a leaked results into b")
	}
	if _, err := m.Dispatch("nobody", nil); err == nil {
		t.Fatal("dispatch to unknown session succeeded")
	}
	// Virtual clocks are independent: b never advanced.
	if b.Kernel().Clock().Now() != 0 {
		t.Fatalf("session b clock = %v, want 0", b.Kernel().Clock().Now())
	}
	if a.Kernel().Clock().Now() == 0 {
		t.Fatal("session a clock did not advance")
	}
}

func TestDispatchEnqueuesWhenStarted(t *testing.T) {
	m := testManager(t, 50_000)
	s := newColumnSession(t, m, "w")
	s.Start()
	res, err := m.Dispatch("w", slideEvents(s, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatal("async dispatch returned synchronous results")
	}
	s.Drain()
	if len(s.Results()) == 0 {
		t.Fatal("worker processed no results")
	}
	if _, err := s.Apply(nil); err == nil {
		t.Fatal("Apply succeeded while worker running")
	}
	m.Close()
	if err := s.Enqueue(nil); err == nil {
		t.Fatal("Enqueue succeeded after Close")
	}
}

func TestSharedSamplesBuiltOnce(t *testing.T) {
	m := testManager(t, 100_000)
	a := newColumnSession(t, m, "a")
	b := newColumnSession(t, m, "b")
	ha := a.Kernel().Objects()[0].Hierarchy()
	hb := b.Kernel().Objects()[0].Hierarchy()
	if ha.Shared() != hb.Shared() {
		t.Fatal("sessions built separate sample hierarchies over the same column")
	}
	if ha == hb {
		t.Fatal("sessions share per-session hierarchy state")
	}
	l0a, _ := ha.Level(1)
	l0b, _ := hb.Level(1)
	if l0a.Col != l0b.Col {
		t.Fatal("sample level columns not shared")
	}
	if l0a.Tracker == l0b.Tracker {
		t.Fatal("trackers shared across sessions")
	}
}

func TestMaxSessionsEvictsLRU(t *testing.T) {
	m := testManager(t, 10_000)
	m.SetMaxSessions(2)
	a := newColumnSession(t, m, "a")
	newColumnSession(t, m, "b")
	// Touch a so b becomes least recently used.
	if _, err := m.Dispatch("a", slideEvents(a, 200*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	newColumnSession(t, m, "c")
	if m.Len() != 2 {
		t.Fatalf("Len() = %d after cap eviction, want 2", m.Len())
	}
	if _, ok := m.Get("b"); ok {
		t.Fatal("LRU session b survived the cap")
	}
	if _, ok := m.Get("a"); !ok {
		t.Fatal("recently used session a was evicted")
	}
	if m.Evictions() != 1 {
		t.Fatalf("Evictions() = %d, want 1", m.Evictions())
	}
}

// TestEvictionPruningNoLeak is the bounded-retention audit for the
// session layer: a long-running session's retained result log must stay
// bounded by the fade horizon (not session length), the scheduler's
// pool must stay bounded by the worker count (sessions pin no
// goroutines of their own) and exit on Manager.Close, and the manager
// must drop its reference on eviction so the session is collectable.
func TestEvictionPruningNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	m := testManager(t, 200_000)
	s := newColumnSession(t, m, "long")
	s.Start()

	// A long session: many gestures, each followed by an idle gap larger
	// than the fade horizon, so earlier results are prunable each batch.
	const gestures = 60
	maxRetained := 0
	for i := 0; i < gestures; i++ {
		if err := s.Enqueue(slideEvents(s, 500*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		s.Drain()
		if n := len(s.Results()); n > maxRetained {
			maxRetained = n
		}
		// Lift the finger past the fade horizon.
		now := s.Kernel().Clock().Now()
		s.Kernel().RunIdle(now, now+2*core.FadeAfter)
	}
	total := s.Kernel().Counters().Get("results.emitted")
	if total == 0 {
		t.Fatal("no results emitted")
	}
	// The retained window must be a per-gesture quantity, not ~total.
	if int64(maxRetained) >= total {
		t.Fatalf("retention unbounded: max retained %d of %d emitted", maxRetained, total)
	}
	perGesture := int(total) / gestures
	if maxRetained > 3*perGesture {
		t.Fatalf("retained window %d exceeds 3x per-gesture volume %d", maxRetained, perGesture)
	}

	if !m.Evict("long") {
		t.Fatal("Evict failed")
	}
	if m.Len() != 0 {
		t.Fatalf("manager still holds %d sessions", m.Len())
	}
	// While the manager lives, only the bounded pool remains — O(workers),
	// regardless of how many sessions ran.
	if g, limit := runtime.NumGoroutine(), base+runtime.GOMAXPROCS(0); g > limit {
		t.Fatalf("goroutines %d exceed baseline+workers %d", g, limit)
	}
	// Closing the manager stops the pool; everything must exit.
	m.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > base {
		t.Fatalf("goroutines leaked after Close: %d > baseline %d", g, base)
	}
}

// TestConcurrentSessionsRace drives many started sessions at once purely
// for the race detector: shared catalog reads, single-flight sample
// builds, shared span statistics, and independent clocks.
func TestConcurrentSessionsRace(t *testing.T) {
	m := testManager(t, 100_000)
	const n = 8
	sessions := make([]*Session, n)
	for i := 0; i < n; i++ {
		sessions[i] = newColumnSession(t, m, string(rune('a'+i)))
		sessions[i].Start()
	}
	for round := 0; round < 3; round++ {
		for _, s := range sessions {
			// Enqueue from the main goroutine; the per-session virtual
			// start time only depends on that session's own timeline.
			if err := s.Enqueue(slideEvents(s, time.Second)); err != nil {
				t.Fatal(err)
			}
		}
		for _, s := range sessions {
			s.Drain()
		}
	}
	for _, s := range sessions {
		if len(s.Results()) == 0 {
			t.Fatalf("session %s produced no results", s.ID())
		}
	}
	m.Close()
}

// TestDerivedTablesStaySessionPrivate: hot-region promotions (and other
// session-derived tables) must not leak into the shared catalog, must not
// pin entries in the manager's shared sample store, and must stay
// resolvable within their own session.
func TestDerivedTablesStaySessionPrivate(t *testing.T) {
	m := testManager(t, 100_000)
	a := newColumnSession(t, m, "a")
	newColumnSession(t, m, "b")

	// Revisit one region so it becomes hot, then promote it.
	var synth gesture.Synth
	objA := a.Kernel().Objects()[0]
	events := synth.BackAndForth(
		touchos.Point{X: 3, Y: 5}, touchos.Point{X: 3, Y: 7},
		a.Kernel().Clock().Now(), 500*time.Millisecond, 4,
	)
	if _, err := a.Apply(events); err != nil {
		t.Fatal(err)
	}
	promoted, err := a.Kernel().PromoteHotRegion(objA, touchos.NewRect(8, 2, 2, 6))
	if err != nil {
		t.Fatal(err)
	}
	name := promoted.Matrix().Name()

	if got := m.Catalog().List(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("shared catalog polluted by derived table: %v", got)
	}
	if _, err := a.Kernel().Lookup(name); err != nil {
		t.Fatalf("promoting session cannot resolve its own table: %v", err)
	}
	bSess, _ := m.Get("b")
	if _, err := bSess.Kernel().Lookup(name); err == nil {
		t.Fatal("derived table visible to another session")
	}
	m.mu.Lock()
	nSamples := len(m.samples)
	m.mu.Unlock()
	if nSamples != 1 {
		t.Fatalf("shared sample store has %d entries, want 1 (derived tables must build privately)", nSamples)
	}
}
