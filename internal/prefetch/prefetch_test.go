package prefetch

import (
	"testing"
	"time"

	"dbtouch/internal/iomodel"
	"dbtouch/internal/vclock"
)

func TestExtrapolatorVelocity(t *testing.T) {
	e := &Extrapolator{}
	// 1000 tuples per 100ms = 10k tuples/sec forward.
	for i := 0; i <= 5; i++ {
		e.Observe(i*1000, time.Duration(i)*100*time.Millisecond)
	}
	v := e.Velocity()
	if v < 9000 || v > 11000 {
		t.Fatalf("velocity = %v, want ≈10000", v)
	}
	if e.Direction() != 1 {
		t.Fatalf("direction = %d", e.Direction())
	}
}

func TestExtrapolatorBackwardDirection(t *testing.T) {
	e := &Extrapolator{}
	for i := 0; i <= 5; i++ {
		e.Observe(10000-i*1000, time.Duration(i)*100*time.Millisecond)
	}
	if e.Direction() != -1 {
		t.Fatalf("direction = %d, want -1", e.Direction())
	}
	from, to := e.Predict(100 * time.Millisecond)
	if from >= to {
		t.Fatalf("predict range inverted: [%d,%d]", from, to)
	}
	if to > 5000 {
		t.Fatalf("backward prediction should extend below last id: [%d,%d]", from, to)
	}
}

func TestPredictPausedCoversBothDirections(t *testing.T) {
	e := &Extrapolator{}
	e.Observe(500, 0)
	e.Observe(500, 100*time.Millisecond) // no movement
	lo, hi := e.Predict(time.Second)
	if lo >= 500 || hi <= 500 {
		t.Fatalf("paused prediction [%d,%d] should straddle 500", lo, hi)
	}
}

func TestPredictUnobserved(t *testing.T) {
	e := &Extrapolator{}
	lo, hi := e.Predict(time.Second)
	if lo != 0 || hi != 0 {
		t.Fatalf("unobserved predict = [%d,%d]", lo, hi)
	}
}

func TestExtrapolatorReset(t *testing.T) {
	e := &Extrapolator{Alpha: 0.5}
	e.Observe(10, 0)
	e.Observe(20, time.Millisecond)
	e.Reset()
	if e.Observed() != 0 || e.Velocity() != 0 {
		t.Fatal("Reset incomplete")
	}
	if e.Alpha != 0.5 {
		t.Fatal("Reset should keep Alpha")
	}
}

func TestPrefetcherWarmsPredictedPath(t *testing.T) {
	clock := vclock.New()
	tr := iomodel.New(clock, iomodel.Params{
		BlockValues: 100, ColdLatency: time.Millisecond, WarmLatency: time.Microsecond, WarmBudget: 0,
	}, nil)
	e := &Extrapolator{Alpha: 1} // no smoothing: exact step estimates
	p := New(e)
	p.Horizon = time.Second

	// Gesture moving forward 1000 tuples per 100ms.
	for i := 0; i <= 5; i++ {
		e.Observe(i*1000, time.Duration(i)*100*time.Millisecond)
	}
	p.OnIdle(0, 50*time.Millisecond, tr, nil)
	// Predicted positions are 6000, 7000, ... (step 1000/touch).
	if !tr.IsWarm(6000) || !tr.IsWarm(9000) {
		t.Fatal("predicted touch positions not warmed")
	}
	st := p.Stats()
	if st.Invocations != 1 || st.IdleSpent == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPrefetcherDisabled(t *testing.T) {
	clock := vclock.New()
	tr := iomodel.New(clock, iomodel.DefaultParams(), nil)
	e := &Extrapolator{}
	e.Observe(0, 0)
	e.Observe(1000, 100*time.Millisecond)
	p := New(e)
	p.Enabled = false
	p.OnIdle(0, time.Second, tr, nil)
	if tr.WarmBlocks() != 0 {
		t.Fatal("disabled prefetcher warmed blocks")
	}
}

func TestPrefetcherRespectsClamp(t *testing.T) {
	clock := vclock.New()
	tr := iomodel.New(clock, iomodel.Params{
		BlockValues: 10, ColdLatency: time.Millisecond, WarmLatency: time.Microsecond,
	}, nil)
	e := &Extrapolator{}
	for i := 0; i <= 5; i++ {
		e.Observe(i*100, time.Duration(i)*50*time.Millisecond)
	}
	clamp := func(id int) int {
		if id < 0 {
			return 0
		}
		if id > 120 {
			return 120
		}
		return id
	}
	p := New(e)
	p.Horizon = 10 * time.Second
	p.OnIdle(0, time.Second, tr, clamp)
	if tr.IsWarm(500) {
		t.Fatal("prefetch escaped the clamp")
	}
	if !tr.IsWarm(120) {
		t.Fatal("clamped range should still be warmed")
	}
}

func TestPrefetcherZeroBudgetNoop(t *testing.T) {
	clock := vclock.New()
	tr := iomodel.New(clock, iomodel.DefaultParams(), nil)
	e := &Extrapolator{}
	e.Observe(0, 0)
	p := New(e)
	p.OnIdle(100, 100, tr, nil)
	if tr.WarmBlocks() != 0 {
		t.Fatal("zero budget should do nothing")
	}
}

func TestPrefetcherNilSafe(t *testing.T) {
	var p *Prefetcher
	p.OnIdle(0, time.Second, nil, nil) // must not panic
}

func TestPrefetcherRangedWarmCoversWholeSpan(t *testing.T) {
	clock := vclock.New()
	tr := iomodel.New(clock, iomodel.Params{
		BlockValues: 100, ColdLatency: time.Millisecond, WarmLatency: time.Microsecond,
	}, nil)
	e := &Extrapolator{Alpha: 1}
	p := New(e)
	p.Horizon = time.Second

	// Forward gesture, 1000 tuples per 100ms: the extrapolated next span
	// is [5000, 15000); span execution will consume every tuple of it,
	// so the warm must be contiguous — including tuples between the
	// predicted touch positions.
	for i := 0; i <= 5; i++ {
		e.Observe(i*1000, time.Duration(i)*100*time.Millisecond)
	}
	p.OnIdle(0, time.Minute, tr, nil)
	for id := 5000; id < 15000; id += 100 {
		if !tr.IsWarm(id) {
			t.Fatalf("tuple %d in the extrapolated span is cold", id)
		}
	}
}

func TestPrefetcherBackwardRangedWarm(t *testing.T) {
	clock := vclock.New()
	tr := iomodel.New(clock, iomodel.Params{
		BlockValues: 100, ColdLatency: time.Millisecond, WarmLatency: time.Microsecond,
	}, nil)
	e := &Extrapolator{Alpha: 1}
	p := New(e)
	p.Horizon = time.Second
	// Backward gesture from 20000, 1000 tuples per 100ms.
	for i := 0; i <= 5; i++ {
		e.Observe(20000-i*1000, time.Duration(i)*100*time.Millisecond)
	}
	// Tight budget: only 20 cold blocks fit, and they must be the ones
	// nearest the finger (the high end of the predicted span).
	p.OnIdle(0, 20*time.Millisecond, tr, nil)
	if !tr.IsWarm(14950) || !tr.IsWarm(13100) {
		t.Fatal("blocks nearest the finger should be warmed first going backward")
	}
	if tr.IsWarm(5500) {
		t.Fatal("far end of the backward span should not be warmed before the near end")
	}
}

func TestPrefetcherFrontierResumesAcrossIdleWindows(t *testing.T) {
	clock := vclock.New()
	tr := iomodel.New(clock, iomodel.Params{
		BlockValues: 100, ColdLatency: time.Millisecond, WarmLatency: time.Microsecond,
	}, nil)
	e := &Extrapolator{Alpha: 1}
	p := New(e)
	p.Horizon = time.Second
	for i := 0; i <= 5; i++ {
		e.Observe(i*1000, time.Duration(i)*100*time.Millisecond)
	}
	// Two consecutive idle windows of one pause: the second must extend
	// past where the first stopped, not re-walk the warm prefix.
	p.OnIdle(0, 10*time.Millisecond, tr, nil) // 10 cold blocks: 5000..6000
	prefetchedAfterFirst := tr.Stats().Prefetched
	if prefetchedAfterFirst == 0 {
		t.Fatal("first window warmed nothing")
	}
	p.OnIdle(10*time.Millisecond, 20*time.Millisecond, tr, nil)
	if got := tr.Stats().Prefetched; got != 2*prefetchedAfterFirst {
		t.Fatalf("second window prefetched %d blocks total, want %d (budget spent re-walking the warm prefix?)",
			got, 2*prefetchedAfterFirst)
	}
}
