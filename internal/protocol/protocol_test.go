package protocol

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/gesture"
	"dbtouch/internal/operator"
	"dbtouch/internal/storage"
)

func TestRequestEncodeDecodeLossless(t *testing.T) {
	k := 7
	on := true
	g := gesture.NewSlidePause(0, 1500*time.Millisecond, 0.3, 250*time.Millisecond)
	reqs := []Request{
		{Op: OpOpen, Session: "u"},
		{Op: OpCreate, Session: "u", Object: "col",
			Create: &CreateSpec{Table: "t", Column: "v", X: 2, Y: 2, W: 2, H: 10}},
		{Op: OpConfigure, Session: "u", Object: "col",
			Actions: &ActionsSpec{Mode: "summary", Agg: "avg", K: &k, ValueOrder: &on,
				Where: []FilterSpec{{Column: "v", Op: ">=", Value: 12.5}}}},
		{Op: OpPerform, Session: "u", Object: "col", Gesture: &g},
		{Op: OpIdle, Session: "u", Idle: 3 * time.Second},
		{Op: OpPin, Session: "u", Object: "col", As: "hot",
			Create: &CreateSpec{X: 9, Y: 2, W: 2, H: 6}},
		{Op: OpStats},
	}
	for _, req := range reqs {
		data, err := EncodeRequest(req)
		if err != nil {
			t.Fatalf("%s: %v", req.Op, err)
		}
		back, err := DecodeRequest(data)
		if err != nil {
			t.Fatalf("%s: %v", req.Op, err)
		}
		req.V = Version // EncodeRequest stamps it
		if !reflect.DeepEqual(req, back) {
			t.Fatalf("%s: round trip lost information:\n got %+v\nwant %+v\nwire %s", req.Op, back, req, data)
		}
	}
}

func TestDecodeRequestVersionGate(t *testing.T) {
	if _, err := DecodeRequest([]byte(`{"op":"stats"}`)); err == nil {
		t.Fatal("missing version must be rejected")
	}
	if _, err := DecodeRequest([]byte(`{"v":99,"op":"stats"}`)); err == nil {
		t.Fatal("future version must be rejected")
	}
	if _, err := DecodeRequest([]byte(`{"v":1,`)); err == nil {
		t.Fatal("malformed JSON must be rejected")
	}
	if _, err := DecodeRequest([]byte(`{"v":1,"op":"stats"}`)); err != nil {
		t.Fatal("current version must be accepted")
	}
}

func TestFrameResult(t *testing.T) {
	r := core.Result{
		Kind: core.ScanValue, ObjectID: 3, TupleID: 41,
		Value: storage.IntValue(99), Level: 2,
		Time: time.Second, FadeAt: 2500 * time.Millisecond, Latency: 65 * time.Millisecond,
	}
	f := FrameResult(r)
	if f.Kind != "scan" || f.Value != "99" || f.TupleID != 41 || f.Time != time.Second {
		t.Fatalf("frame = %+v", f)
	}
	j := FrameResult(core.Result{Kind: core.JoinMatches, Matches: make([]operator.JoinMatch, 4)})
	if j.Matches != 4 || j.Kind != "join" {
		t.Fatalf("join frame = %+v", j)
	}
}

func TestActionsSpecApply(t *testing.T) {
	m, err := storage.NewMatrix("t",
		storage.NewIntColumn("v", []int64{1, 2, 3}),
		storage.NewStringColumn("s", []string{"a", "b", "c"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	cur := core.Actions{Mode: core.ModeScan}
	k := 4
	spec := ActionsSpec{Mode: "summary", Agg: "max", K: &k,
		Where: []FilterSpec{{Column: "v", Op: "<", Value: 10.0}, {Column: "s", Op: "=", Value: "b"}}}
	got, err := spec.Apply(cur, m)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mode != core.ModeSummary || got.Agg != operator.Max || got.SummaryK != 4 {
		t.Fatalf("applied = %+v", got)
	}
	if len(got.Filters) != 2 || got.Filters[0].Col != 0 || got.Filters[1].Col != 1 {
		t.Fatalf("filters = %+v", got.Filters)
	}
	if got.Filters[1].Operand != storage.StringValue("b") {
		t.Fatalf("operand = %+v", got.Filters[1].Operand)
	}
	if len(cur.Filters) != 0 {
		t.Fatal("Apply mutated the input actions")
	}

	// The delta keeps unset fields.
	kept, err := ActionsSpec{Agg: "min"}.Apply(got, m)
	if err != nil {
		t.Fatal(err)
	}
	if kept.Mode != core.ModeSummary || kept.Agg != operator.Min || kept.SummaryK != 4 || len(kept.Filters) != 2 {
		t.Fatalf("delta clobbered settings: %+v", kept)
	}

	// Errors reject the delta wholesale.
	for _, bad := range []ActionsSpec{
		{Mode: "warp"},
		{Agg: "median"},
		{Where: []FilterSpec{{Column: "ghost", Op: "=", Value: 1.0}}},
		{Where: []FilterSpec{{Column: "v", Op: "~", Value: 1.0}}},
	} {
		if _, err := bad.Apply(cur, m); err == nil {
			t.Fatalf("%+v should be rejected", bad)
		}
	}
	neg := -1
	if _, err := (ActionsSpec{K: &neg}).Apply(cur, m); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative k: %v", err)
	}
}

func TestCoerceValue(t *testing.T) {
	cases := []struct {
		in   any
		want storage.Value
	}{
		{12.5, storage.FloatValue(12.5)},
		{int(3), storage.IntValue(3)},
		{int64(4), storage.IntValue(4)},
		{true, storage.BoolValue(true)},
		{"x", storage.StringValue("x")},
		{[]int{1}, storage.StringValue("[1]")},
	}
	for _, c := range cases {
		if got := CoerceValue(c.in); got != c.want {
			t.Fatalf("CoerceValue(%v) = %+v, want %+v", c.in, got, c.want)
		}
	}
}
