package session

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/gesture"
	"dbtouch/internal/operator"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
)

// The concurrent-equivalence suite extends PR 1's span-equivalence idea
// across the session layer: a session's result stream must be
// byte-identical whether its gesture script runs alone on one goroutine
// or concurrently with many other sessions over the same shared storage,
// at any scheduler pool size (the same scripts run under pools of 1, 4
// and GOMAXPROCS workers — the work-stealing scheduler must never
// reorder one session's batches or let sessions interfere). Randomized
// scripts vary gesture speed, direction, range and touch mode per
// session; `go test -race ./internal/session` additionally proves the
// shared layer (catalog, sample columns, single-flight span statistics,
// memoized predicate tables) is read without data races.

// sessionScript is one session's precomputed exploration: the touch
// configuration plus a deterministic sequence of raw event batches.
type sessionScript struct {
	id      string
	actions core.Actions
	batches [][]touchos.TouchEvent
}

// equivFrame is the shared object frame scripts slide over.
var equivFrame = touchos.NewRect(2, 2, 2, 10)

// genScript synthesizes a random exploration for one session. All
// randomness is drawn from rng, so the same seed reproduces the same
// script in the sequential and concurrent runs.
func genScript(id string, rng *rand.Rand) sessionScript {
	var synth gesture.Synth
	sc := sessionScript{id: id}

	switch rng.Intn(3) {
	case 0:
		sc.actions = core.Actions{Mode: core.ModeScan}
	case 1:
		sc.actions = core.Actions{Mode: core.ModeAggregate, Agg: operator.Sum}
	default:
		sc.actions = core.Actions{Mode: core.ModeSummary, Agg: operator.Avg, SummaryK: 5 + rng.Intn(20)}
	}
	if rng.Intn(3) == 0 {
		sc.actions.Filters = []operator.Predicate{{
			Col: 0, Op: operator.Lt, Operand: storage.IntValue(int64(200 + rng.Intn(700))),
		}}
	}

	x := equivFrame.Origin.X + equivFrame.Size.W/2
	yAt := func(frac float64) float64 {
		return equivFrame.Origin.Y + 0.02 + frac*(equivFrame.Size.H-0.04)
	}
	// Each batch starts where the session's timeline will be: gestures are
	// spaced by their own duration plus a think-time gap, so precomputed
	// absolute timestamps line up identically in both runs.
	cur := time.Duration(0)
	nBatches := 3 + rng.Intn(4)
	for b := 0; b < nBatches; b++ {
		dur := time.Duration(300+rng.Intn(1200)) * time.Millisecond
		from, to := rng.Float64(), rng.Float64()
		var events []touchos.TouchEvent
		if rng.Intn(4) == 0 {
			events = synth.Tap(touchos.Point{X: x, Y: yAt(from)}, cur)
		} else {
			events = synth.Slide(
				touchos.Point{X: x, Y: yAt(from)},
				touchos.Point{X: x, Y: yAt(to)},
				cur, dur,
			)
		}
		sc.batches = append(sc.batches, events)
		// Past the end of the gesture plus a gap; the dispatcher clamps if
		// the kernel is still busy.
		cur += dur + 2*time.Second
	}
	return sc
}

// setupEquivManager builds a manager over the shared integer table and
// creates one configured session per script.
func setupEquivManager(t *testing.T, data []int64, scripts []sessionScript) (*Manager, map[string]*[]core.Result) {
	t.Helper()
	m := NewManager(core.DefaultConfig())
	mx, err := storage.NewMatrix("t", storage.NewIntColumn("v", data))
	if err != nil {
		t.Fatal(err)
	}
	m.Catalog().Register(mx)
	streams := make(map[string]*[]core.Result, len(scripts))
	for _, sc := range scripts {
		s, err := m.Create(sc.id)
		if err != nil {
			t.Fatal(err)
		}
		obj, err := s.CreateColumnObject("t", "v", equivFrame)
		if err != nil {
			t.Fatal(err)
		}
		obj.SetActions(sc.actions)
		stream := &[]core.Result{}
		s.OnResult(func(r core.Result) { *stream = append(*stream, r) })
		streams[sc.id] = stream
	}
	return m, streams
}

func TestConcurrentStreamsIdenticalToSequential(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			data := make([]int64, 120_000)
			for i := range data {
				data[i] = int64(rng.Intn(1000))
			}
			const nSessions = 6
			scripts := make([]sessionScript, nSessions)
			for i := range scripts {
				scripts[i] = genScript(fmt.Sprintf("user%d", i), rand.New(rand.NewSource(seed*100+int64(i))))
			}

			// Sequential reference: every batch of every session on the
			// test goroutine, one session at a time.
			seqM, seqStreams := setupEquivManager(t, data, scripts)
			for _, sc := range scripts {
				for _, batch := range sc.batches {
					if _, err := seqM.Dispatch(sc.id, batch); err != nil {
						t.Fatal(err)
					}
				}
			}
			seqM.Close()

			// Concurrent runs: all sessions started on the work-stealing
			// scheduler, batches interleaved round-robin across sessions
			// from the main goroutine. Pool sizes 1 (pure round-robin), 4
			// (stealing among few workers) and GOMAXPROCS (the default)
			// must all reproduce the sequential streams.
			for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				conM, conStreams := setupEquivManager(t, data, scripts)
				if err := conM.SetWorkers(workers); err != nil {
					t.Fatal(err)
				}
				for _, sc := range scripts {
					s, _ := conM.Get(sc.id)
					s.Start()
				}
				for b := 0; ; b++ {
					any := false
					for _, sc := range scripts {
						if b < len(sc.batches) {
							any = true
							if _, err := conM.Dispatch(sc.id, sc.batches[b]); err != nil {
								t.Fatal(err)
							}
						}
					}
					if !any {
						break
					}
				}
				for _, sc := range scripts {
					s, _ := conM.Get(sc.id)
					s.Drain()
				}
				conM.Close()

				for _, sc := range scripts {
					seq, con := *seqStreams[sc.id], *conStreams[sc.id]
					if len(seq) == 0 {
						t.Fatalf("session %s: sequential run emitted nothing", sc.id)
					}
					if !reflect.DeepEqual(seq, con) {
						limit := len(seq)
						if len(con) < limit {
							limit = len(con)
						}
						for i := 0; i < limit; i++ {
							if !reflect.DeepEqual(seq[i], con[i]) {
								t.Fatalf("session %s (pool %d): result %d differs\nseq: %+v\ncon: %+v",
									sc.id, workers, i, seq[i], con[i])
							}
						}
						t.Fatalf("session %s (pool %d): stream lengths differ (seq %d, con %d)",
							sc.id, workers, len(seq), len(con))
					}
				}
			}
		})
	}
}
