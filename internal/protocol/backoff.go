package protocol

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// ErrRetriesExhausted marks a retryable operation that failed every
// allowed attempt. Callers unwrap it with errors.Is; the last underlying
// failure is wrapped alongside it.
var ErrRetriesExhausted = errors.New("protocol: retries exhausted")

// Backoff is the one retry policy shared by every resilient caller in
// the system — protocol.Client (overloaded requests, stream reconnects)
// and the gateway's proxy path — so backoff behavior is uniform instead
// of ad-hoc sleeps: capped exponential growth with full jitter, and a
// server-sent Retry-After hint always honored as the floor for that
// attempt (an overloaded server knows its own drain rate better than
// our curve does).
//
// The zero value is usable and selects the defaults below. Backoff is a
// value type: copies are independent, and a Backoff without custom
// Rand/Sleep hooks is safe for concurrent use.
type Backoff struct {
	// Base is the first attempt's delay ceiling (default 50ms). Attempt
	// k's ceiling is Base<<k, capped at Cap.
	Base time.Duration
	// Cap bounds any single delay (default 2s).
	Cap time.Duration
	// Attempts is how many retries are allowed after the initial try
	// (default 4). Retry loops surface ErrRetriesExhausted past it.
	Attempts int
	// Rand overrides the jitter source with a function returning values
	// in [0, 1) — injectable for deterministic tests. Nil uses the
	// global math/rand source (which is safe for concurrent use).
	Rand func() float64
	// Sleep overrides the delay implementation — injectable for tests
	// that must not consume wall-clock time. Nil sleeps for real.
	Sleep func(time.Duration)
}

// Backoff defaults.
const (
	DefaultBackoffBase     = 50 * time.Millisecond
	DefaultBackoffCap      = 2 * time.Second
	DefaultBackoffAttempts = 4
)

func (b Backoff) base() time.Duration {
	if b.Base > 0 {
		return b.Base
	}
	return DefaultBackoffBase
}

func (b Backoff) cap() time.Duration {
	if b.Cap > 0 {
		return b.Cap
	}
	return DefaultBackoffCap
}

// MaxAttempts resolves the configured retry budget.
func (b Backoff) MaxAttempts() int {
	if b.Attempts > 0 {
		return b.Attempts
	}
	return DefaultBackoffAttempts
}

func (b Backoff) random() float64 {
	if b.Rand != nil {
		return b.Rand()
	}
	return rand.Float64()
}

// Delay computes attempt's wait (attempt counts from 0): full jitter
// over the capped exponential ceiling, with retryAfter — the server's
// Retry-After hint, zero when absent — as the floor. Full jitter
// (delay = random in [0, ceiling]) is what prevents a thundering herd:
// clients knocked back by the same event spread out instead of
// returning in lockstep.
func (b Backoff) Delay(attempt int, retryAfter time.Duration) time.Duration {
	ceiling := b.cap()
	if shift := b.base() << uint(attempt); shift > 0 && shift < ceiling {
		ceiling = shift
	}
	d := time.Duration(b.random() * float64(ceiling))
	if retryAfter > 0 && d < retryAfter {
		d = retryAfter
	}
	return d
}

// wait sleeps for attempt's delay, honoring ctx cancellation. Reports
// false when the context died first.
func (b Backoff) wait(ctx context.Context, attempt int, retryAfter time.Duration) bool {
	d := b.Delay(attempt, retryAfter)
	if b.Sleep != nil {
		b.Sleep(d)
		return ctx.Err() == nil
	}
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Retry runs fn up to 1+MaxAttempts times. fn reports whether its
// failure is retryable and an optional server-hinted minimum delay.
// A nil error stops immediately; a non-retryable error surfaces as-is;
// running out of attempts wraps the last error with ErrRetriesExhausted.
func (b Backoff) Retry(ctx context.Context, fn func() (retryable bool, retryAfter time.Duration, err error)) error {
	var last error
	for attempt := 0; ; attempt++ {
		retryable, retryAfter, err := fn()
		if err == nil {
			return nil
		}
		if !retryable {
			return err
		}
		last = err
		if attempt >= b.MaxAttempts() {
			return errors.Join(ErrRetriesExhausted, last)
		}
		if !b.wait(ctx, attempt, retryAfter) {
			return errors.Join(ctx.Err(), last)
		}
	}
}

// RetryAfterDuration renders a response's Retry-After hint (seconds) as
// a duration, zero when the response carried none.
func RetryAfterDuration(resp Response) time.Duration {
	if resp.RetryAfter > 0 {
		return time.Duration(resp.RetryAfter) * time.Second
	}
	return 0
}
