package core

import (
	"dbtouch/internal/gesture"
	"dbtouch/internal/operator"
	"sync"
	"testing"
	"time"
)

func TestResultStreamCursor(t *testing.T) {
	s := newResultStream(4)
	if _, ok := s.TryNext(); ok {
		t.Fatal("TryNext on an empty stream should report no result")
	}
	for i := 0; i < 3; i++ {
		s.push(Result{TupleID: i})
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for i := 0; i < 3; i++ {
		r, ok := s.Next()
		if !ok || r.TupleID != i {
			t.Fatalf("Next #%d = (%v, %v), want in-order delivery", i, r.TupleID, ok)
		}
	}
}

func TestResultStreamDropsOldestWhenFull(t *testing.T) {
	s := newResultStream(2)
	for i := 0; i < 5; i++ {
		s.push(Result{TupleID: i})
	}
	if got := s.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	// The newest results survive; the kernel was never blocked.
	r, _ := s.Next()
	if r.TupleID != 3 {
		t.Fatalf("first surviving result = %d, want 3", r.TupleID)
	}
}

func TestResultStreamCloseDrainsThenEnds(t *testing.T) {
	s := newResultStream(4)
	s.push(Result{TupleID: 1})
	s.Close()
	if !s.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if r, ok := s.Next(); !ok || r.TupleID != 1 {
		t.Fatal("Close must not discard buffered results")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("drained closed stream must end")
	}
	if s.push(Result{}) {
		t.Fatal("push to a closed stream must report closed")
	}
}

func TestResultStreamCrossGoroutine(t *testing.T) {
	s := newResultStream(8)
	const n = 500
	var got []Result
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r, ok := s.Next(); ok; r, ok = s.Next() {
			got = append(got, r)
		}
	}()
	for i := 0; i < n; i++ {
		s.push(Result{TupleID: i})
		if i%16 == 0 {
			time.Sleep(time.Microsecond)
		}
	}
	s.Close()
	wg.Wait()
	if int64(len(got))+s.Dropped() != n {
		t.Fatalf("delivered %d + dropped %d != produced %d", len(got), s.Dropped(), n)
	}
	for i := 1; i < len(got); i++ {
		if got[i].TupleID <= got[i-1].TupleID {
			t.Fatal("delivery out of order")
		}
	}
}

func TestKernelSubscribeObservesPerform(t *testing.T) {
	k, obj := testKernel(t, 100000, DefaultConfig())
	obj.SetActions(Actions{Mode: ModeSummary, Agg: operator.Avg, SummaryK: 10})
	stream := k.Subscribe(0)
	early := k.Subscribe(0)
	early.Close() // closed before any emission: must be unsubscribed, not break emit

	results, err := k.Perform(gesture.NewSlide(obj.ID(), 0, 1, 2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("slide produced no results")
	}
	for i, want := range results {
		got, ok := stream.TryNext()
		if !ok {
			t.Fatalf("stream ended at %d, want %d results", i, len(results))
		}
		if !resultsEqual(got, want) {
			t.Fatalf("stream result %d = %+v, want %+v", i, got, want)
		}
	}
	if _, ok := stream.TryNext(); ok {
		t.Fatal("stream delivered more than the kernel emitted")
	}
	if stream.Dropped() != 0 {
		t.Fatalf("unexpected drops: %d", stream.Dropped())
	}
}

func TestKernelPerformMatchesApply(t *testing.T) {
	mk := func() (*Kernel, *Object) {
		k, obj := testKernel(t, 50000, DefaultConfig())
		obj.SetActions(Actions{Mode: ModeSummary, Agg: operator.Avg, SummaryK: 5})
		return k, obj
	}
	kA, objA := mk()
	kB, objB := mk()

	// Path A: raw synthesized events through Apply (the pre-protocol way).
	eventsA := slideEvents(objA, time.Second, 0)
	resA := kA.Apply(eventsA)

	// Path B: the same gesture as a description through Perform.
	resB, err := kB.Perform(gesture.NewSlide(objB.ID(), 0, 1, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(resB) == 0 {
		t.Fatal("Perform produced no results")
	}
	// Endpoints differ slightly (slideEvents insets 0.05, Perform 0.02),
	// so assert stream shape rather than equality here; exact equality is
	// asserted by the facade and protocol equivalence suites.
	if countResults(resA, SummaryValue) == 0 || countResults(resB, SummaryValue) == 0 {
		t.Fatal("both paths must produce summaries")
	}

	// Unknown target and invalid descriptions fail cleanly.
	if _, err := kB.Perform(gesture.NewSlide(999, 0, 1, time.Second)); err == nil {
		t.Fatal("Perform on unknown object must error")
	}
	before := kB.Clock().Now()
	if _, err := kB.Perform(gesture.NewZoom(objB.ID(), 0)); err == nil {
		t.Fatal("zoom factor 0 must error")
	}
	if kB.Clock().Now() != before {
		t.Fatal("failed Perform must not advance the clock")
	}
}

func TestKernelPerformMove(t *testing.T) {
	k, obj := testKernel(t, 1000, DefaultConfig())
	if _, err := k.Perform(gesture.NewMove(obj.ID(), 5, 6)); err != nil {
		t.Fatal(err)
	}
	f := obj.View().Frame()
	if f.Origin.X != 5 || f.Origin.Y != 6 {
		t.Fatalf("move landed at (%v, %v), want (5, 6)", f.Origin.X, f.Origin.Y)
	}
	if k.Clock().Now() != 0 {
		t.Fatal("move must not advance the clock")
	}
}
