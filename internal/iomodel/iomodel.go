// Package iomodel charges virtual time for data access, simulating the
// storage hierarchy the dbTouch prototype ran on (paper §2.6 "Storing and
// Accessing Data"). Data lives in blocks; the first touch of a block is a
// cold fetch with block latency, later touches are warm per-value reads.
// A warm-block budget models limited fast memory, and pluggable eviction
// policies let the caching experiments (§2.6 "Caching Data") compare
// gesture-aware policies against plain LRU.
package iomodel

import (
	"time"

	"dbtouch/internal/vclock"
)

// Params configures the storage cost model.
type Params struct {
	// BlockValues is the number of fixed-width values per storage block.
	BlockValues int
	// ColdLatency is charged once when a block is first brought warm.
	ColdLatency time.Duration
	// WarmLatency is charged per value read from a warm block.
	WarmLatency time.Duration
	// WarmBudget caps the number of simultaneously warm blocks;
	// 0 means unlimited (no eviction).
	WarmBudget int
}

// DefaultParams models a tablet-class device: 1024-value blocks, 50µs cold
// block fetch, 5ns warm value reads, 4096 warm blocks (~32 MB of 64-bit
// values).
func DefaultParams() Params {
	return Params{
		BlockValues: 1024,
		ColdLatency: 50 * time.Microsecond,
		WarmLatency: 5 * time.Nanosecond,
		WarmBudget:  4096,
	}
}

// EvictionPolicy decides which warm block to drop when the budget is
// exceeded. Implementations live in internal/cache; iomodel ships plain
// LRU as the default.
type EvictionPolicy interface {
	// Touched notifies the policy of an access to block b at virtual time
	// now, moving in direction dir (-1 backward, 0 unknown, +1 forward).
	Touched(b int, now time.Duration, dir int)
	// Victim picks the block to evict from the warm set. lastUse maps
	// warm blocks to their last access time.
	Victim(lastUse map[int]time.Duration) int
	// Forgot notifies the policy that block b was evicted.
	Forgot(b int)
	// Name identifies the policy in benchmark output.
	Name() string
}

// RangePolicy is an optional EvictionPolicy extension: policies that
// implement it receive one TouchedN call per block for ranged accesses
// instead of one Touched call per value, keeping span charging O(blocks).
type RangePolicy interface {
	// TouchedN notifies the policy of n accesses to block b at virtual
	// time now, moving in direction dir.
	TouchedN(b, n int, now time.Duration, dir int)
}

// Stats counts cost-model activity.
type Stats struct {
	ColdFetches int64 // blocks fetched cold on the touch path
	WarmHits    int64 // values served from warm blocks
	ValuesRead  int64 // total values charged
	Prefetched  int64 // blocks warmed off the touch path
	Evictions   int64 // blocks evicted
	BytesRead   int64 // bytes moved from cold storage (block fetches)
}

// Tracker charges access costs against a virtual clock for one backing
// array (a column, a sample level, or a row-major slab).
type Tracker struct {
	params Params
	clock  *vclock.Clock
	warm   map[int]time.Duration
	policy EvictionPolicy
	stats  Stats
	dir    int
}

// New returns a tracker with the given params. A nil policy selects LRU.
func New(clock *vclock.Clock, params Params, policy EvictionPolicy) *Tracker {
	if params.BlockValues <= 0 {
		params.BlockValues = 1
	}
	if policy == nil {
		policy = LRU{}
	}
	return &Tracker{
		params: params,
		clock:  clock,
		warm:   make(map[int]time.Duration),
		policy: policy,
	}
}

// Params returns the tracker's cost parameters.
func (t *Tracker) Params() Params { return t.params }

// Policy exposes the eviction policy (gesture-aware policies also feed
// hot-range detection for cache-to-sample promotion).
func (t *Tracker) Policy() EvictionPolicy { return t.policy }

// SetDirection records the current gesture movement direction, forwarded
// to the eviction policy on each touch.
func (t *Tracker) SetDirection(dir int) { t.dir = dir }

// Block returns the block index holding value idx.
func (t *Tracker) Block(idx int) int { return idx / t.params.BlockValues }

// IsWarm reports whether the block holding value idx is warm.
func (t *Tracker) IsWarm(idx int) bool {
	_, ok := t.warm[t.Block(idx)]
	return ok
}

// Access charges the cost of reading the value at idx, advances the clock,
// and returns the charged duration.
func (t *Tracker) Access(idx int) time.Duration {
	cost := t.accessCost(idx, false)
	t.clock.Advance(cost)
	return cost
}

// AccessRange charges the cost of reading values [lo, hi), advances the
// clock, and returns the total charged duration. Costs, stats, and warm
// state evolve exactly as a per-value Access loop over the same indices
// would, but the bookkeeping runs once per touched block rather than once
// per value — the iomodel half of span-at-a-time execution.
func (t *Tracker) AccessRange(lo, hi int) time.Duration {
	if hi <= lo {
		return 0
	}
	now := t.clock.Now()
	bv := t.params.BlockValues
	var total time.Duration
	for b := lo / bv; b <= (hi-1)/bv; b++ {
		first := b * bv
		if first < lo {
			first = lo
		}
		last := (b + 1) * bv
		if last > hi {
			last = hi
		}
		total += t.chargeBlock(b, last-first, now)
	}
	t.clock.Advance(total)
	return total
}

// AccessCount charges k value reads against the block holding value idx,
// advancing the clock — the charging primitive for fused filter+aggregate
// scans, which know how many values qualified inside each cost-model
// block without ever materializing their positions. Cost, stats, and
// warm-state evolution match k Access calls (or one AccessRange over k
// contiguous values) within that block.
func (t *Tracker) AccessCount(idx, k int) time.Duration {
	if k <= 0 {
		return 0
	}
	cost := t.chargeBlock(t.Block(idx), k, t.clock.Now())
	t.clock.Advance(cost)
	return cost
}

// AccessStrided charges the cost of reading values lo, lo+stride, ... up
// to (but excluding) hi, advancing the clock once — the span primitive
// for row-major slabs, where one attribute's cells sit a fixed stride
// apart. Stride <= 0 charges nothing.
func (t *Tracker) AccessStrided(lo, hi, stride int) time.Duration {
	if stride <= 0 || hi <= lo {
		return 0
	}
	now := t.clock.Now()
	bv := t.params.BlockValues
	var total time.Duration
	curB, run := -1, 0
	for i := lo; i < hi; i += stride {
		if b := i / bv; b != curB {
			if run > 0 {
				total += t.chargeBlock(curB, run, now)
			}
			curB, run = b, 1
		} else {
			run++
		}
	}
	if run > 0 {
		total += t.chargeBlock(curB, run, now)
	}
	t.clock.Advance(total)
	return total
}

// chargeBlock records k value reads against block b at time now and
// returns their cost — the per-block equivalent of k accessCost calls,
// including the pathological case where the eviction policy drops the
// block immediately after warming (the no-caching strawman), which makes
// every further value in the block a fresh cold fetch.
func (t *Tracker) chargeBlock(b, k int, now time.Duration) time.Duration {
	cost := time.Duration(k) * t.params.WarmLatency
	if _, ok := t.warm[b]; !ok {
		cost += t.params.ColdLatency
		t.warmBlock(b, now)
		t.stats.ColdFetches++
		t.stats.BytesRead += int64(t.params.BlockValues) * 8
		if _, still := t.warm[b]; still {
			t.stats.WarmHits += int64(k - 1)
		} else {
			for i := 1; i < k; i++ {
				cost += t.params.ColdLatency
				t.warmBlock(b, now)
				t.stats.ColdFetches++
				t.stats.BytesRead += int64(t.params.BlockValues) * 8
			}
		}
	} else {
		t.warm[b] = now
		t.stats.WarmHits += int64(k)
	}
	t.stats.ValuesRead += int64(k)
	if rp, ok := t.policy.(RangePolicy); ok {
		rp.TouchedN(b, k, now, t.dir)
	} else {
		for i := 0; i < k; i++ {
			t.policy.Touched(b, now, t.dir)
		}
	}
	return cost
}

// accessCost computes and records the cost of one value read. When
// prefetching is true the warm hit is not counted against touch stats.
func (t *Tracker) accessCost(idx int, prefetching bool) time.Duration {
	b := t.Block(idx)
	now := t.clock.Now()
	cost := t.params.WarmLatency
	if _, ok := t.warm[b]; !ok {
		cost += t.params.ColdLatency
		t.warmBlock(b, now)
		if prefetching {
			t.stats.Prefetched++
		} else {
			t.stats.ColdFetches++
		}
		t.stats.BytesRead += int64(t.params.BlockValues) * 8
	} else {
		t.warm[b] = now
		if !prefetching {
			t.stats.WarmHits++
		}
	}
	if !prefetching {
		t.stats.ValuesRead++
	}
	t.policy.Touched(b, now, t.dir)
	return cost
}

// warmBlock marks b warm and evicts if over budget.
func (t *Tracker) warmBlock(b int, now time.Duration) {
	t.warm[b] = now
	if t.params.WarmBudget > 0 && len(t.warm) > t.params.WarmBudget {
		victim := t.policy.Victim(t.warm)
		if _, ok := t.warm[victim]; !ok {
			// Defensive: a policy returning a non-warm block falls back
			// to oldest-first so eviction always makes progress.
			victim = oldestBlock(t.warm)
		}
		delete(t.warm, victim)
		t.policy.Forgot(victim)
		t.stats.Evictions++
	}
}

// PrefetchBlock warms the block containing idx without advancing the
// clock, consuming from budget instead. It returns the cost consumed
// (zero when the block was already warm or the budget is insufficient).
func (t *Tracker) PrefetchBlock(idx int, budget time.Duration) time.Duration {
	b := t.Block(idx)
	if _, ok := t.warm[b]; ok {
		return 0
	}
	if budget < t.params.ColdLatency {
		return 0
	}
	t.warmBlock(b, t.clock.Now())
	t.stats.Prefetched++
	t.stats.BytesRead += int64(t.params.BlockValues) * 8
	return t.params.ColdLatency
}

// PrefetchRange warms blocks covering values [lo, hi) front to back within
// budget. It returns the total cost consumed and the frontier: the first
// value index not yet processed when the budget ran out (>= hi when the
// whole range was covered).
func (t *Tracker) PrefetchRange(lo, hi int, budget time.Duration) (time.Duration, int) {
	if lo > hi {
		lo, hi = hi, lo
	}
	var used time.Duration
	b := t.Block(lo)
	for ; b <= t.Block(hi); b++ {
		if budget-used < t.params.ColdLatency && !t.IsWarm(b*t.params.BlockValues) {
			break
		}
		used += t.PrefetchBlock(b*t.params.BlockValues, budget-used)
	}
	return used, b * t.params.BlockValues
}

// WarmBlocks reports how many blocks are currently warm.
func (t *Tracker) WarmBlocks() int { return len(t.warm) }

// Stats returns a snapshot of the counters.
func (t *Tracker) Stats() Stats { return t.stats }

// ResetStats zeroes the counters, keeping warmth state.
func (t *Tracker) ResetStats() { t.stats = Stats{} }

// Cool drops all warm blocks, returning the store to a cold start.
func (t *Tracker) Cool() {
	for b := range t.warm {
		t.policy.Forgot(b)
	}
	t.warm = make(map[int]time.Duration)
}

// LRU is the default eviction policy: evict the least recently used block.
type LRU struct{}

// Touched implements EvictionPolicy (LRU keeps no extra state; recency
// lives in the tracker's lastUse map).
func (LRU) Touched(int, time.Duration, int) {}

// TouchedN implements RangePolicy (no per-touch state to batch).
func (LRU) TouchedN(int, int, time.Duration, int) {}

// Victim returns the least recently used warm block.
func (LRU) Victim(lastUse map[int]time.Duration) int { return oldestBlock(lastUse) }

// Forgot implements EvictionPolicy.
func (LRU) Forgot(int) {}

// Name implements EvictionPolicy.
func (LRU) Name() string { return "lru" }

func oldestBlock(lastUse map[int]time.Duration) int {
	victim, oldest := -1, time.Duration(1<<62)
	for b, t := range lastUse {
		if t < oldest || (t == oldest && b < victim) {
			victim, oldest = b, t
		}
	}
	return victim
}
