#!/usr/bin/env bash
# ftdc_roundtrip.sh — end-to-end decode gate for the flight recorder
# (wired into CI): run a real dbtouch-serve with FTDC capture on, drive
# protocol traffic at it, shut it down cleanly, and prove the capture
# decodes with dbtouch-ftdc inside the retention bound.
#
# Usage: scripts/ftdc_roundtrip.sh [seconds-to-capture]   (default 2)
. "$(dirname "$0")/lib.sh"
lib_init

capture_secs="${1:-2}"
addr="127.0.0.1:18931"
retain=$((64 * 1024))

go build -o "$work/dbtouch-ftdc" ./cmd/dbtouch-ftdc

capture="$work/capture"
serve_start -addr "$addr" -rows 100000 \
  -ftdc-dir "$capture" -ftdc-interval 25ms -ftdc-chunk 20 \
  -ftdc-retain "$retain"
serve_wait "$addr"

# Drive traffic so the gauges actually move during the capture.
rpc "$addr" '{"v":1,"op":"open","session":"ci"}' >/dev/null
rpc "$addr" '{"v":1,"op":"create","session":"ci","object":"o","create":{"table":"t","column":"v","x":2,"y":2,"w":2,"h":10}}' >/dev/null
rpc "$addr" '{"v":1,"op":"perform","session":"ci","object":"o","gesture":{"kind":"slide","to":1,"dur":2000000000}}' >/dev/null
sleep "$capture_secs"
# SIGHUP flushes the partial chunk mid-flight; SIGTERM flushes and exits.
kill -HUP "$serve_pid"
sleep 0.2
serve_stop TERM

# The capture must decode: at least one chunk, and at least the ticks a
# conservative reading of the capture window guarantees (half the
# interval-derived count, to stay robust on slow runners).
chunks="$("$work/dbtouch-ftdc" -format chunks "$capture" | wc -l)"
if [ "$chunks" -lt 1 ]; then
  echo "FAIL: capture decoded to $chunks chunks" >&2
  exit 1
fi
rows="$("$work/dbtouch-ftdc" -format csv "$capture" | grep -vc '^ts_unix_ns' || true)"
min_rows=$((capture_secs * 1000 / 25 / 2))
if [ "$rows" -lt "$min_rows" ]; then
  echo "FAIL: capture decoded to $rows ticks, want >= $min_rows" >&2
  exit 1
fi
"$work/dbtouch-ftdc" "$capture" | grep -q 'sessions_live' || {
  echo "FAIL: summary is missing the sessions_live gauge" >&2
  exit 1
}

# Retention bound: budget + one live file (clamped to budget/4) + slack.
size="$(du -sb "$capture" | cut -f1)"
bound=$((retain + retain / 4 + 16 * 1024))
if [ "$size" -gt "$bound" ]; then
  echo "FAIL: capture dir $size bytes exceeds retention bound $bound" >&2
  exit 1
fi

echo "ok: $chunks chunks, $rows ticks, $size bytes (bound $bound)"
