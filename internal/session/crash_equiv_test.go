package session_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"dbtouch"
	"dbtouch/internal/protocol"
	"dbtouch/internal/script"
	"dbtouch/internal/sessionlog"
)

// Crash-point equivalence: the acceptance gate for durable sessions.
// A session killed at an arbitrary request boundary — with or without a
// torn partial frame at the end of its log — and resumed on a fresh
// manager over the same log directory must continue producing a result
// stream byte-identical to a run that was never interrupted. The suite
// randomizes scripts, crash points and pool sizes, and forces
// checkpoint compaction mid-run so resume exercises checkpoint + tail,
// not just tail.

// newDurableInstance builds a dbtouch instance with the deterministic
// tables the crash scripts touch and a session-log store on dir. A tiny
// compaction threshold forces several checkpoint rewrites per script.
func newDurableInstance(t *testing.T, dir string) (*dbtouch.DB, *sessionlog.Store) {
	t.Helper()
	db := dbtouch.Open()
	vals := make([]int64, 100000)
	for i := range vals {
		vals[i] = int64(i * 7 % 1000)
	}
	db.NewTable("t").Int("v", vals).MustCreate()
	n := 5000
	ids := make([]int64, n)
	temps := make([]float64, n)
	sites := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		temps[i] = float64((i*13)%100) / 2
		sites[i] = fmt.Sprintf("site%d", i%7)
	}
	db.NewTable("multi").Int("id", ids).Float("temp", temps).String("site", sites).MustCreate()
	st, err := sessionlog.Open(sessionlog.Options{Dir: dir, CompactBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	db.Manager().EnableDurability(st)
	return db, st
}

// crashScript synthesizes a randomized gesture script from a seed —
// same shape as the protocol round-trip generator, ending on a slide so
// every script measurably produces results.
func crashScript(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("column obj t v 2 2 2 10\n")
	b.WriteString("summarize obj avg 10\n")
	steps := 10 + rng.Intn(8)
	for i := 0; i < steps; i++ {
		switch rng.Intn(10) {
		case 0:
			fmt.Fprintf(&b, "scan obj\n")
		case 1:
			aggs := []string{"count", "sum", "avg", "min", "max", "var", "stddev"}
			fmt.Fprintf(&b, "aggregate obj %s\n", aggs[rng.Intn(len(aggs))])
		case 2:
			fmt.Fprintf(&b, "summarize obj avg %d\n", 1+rng.Intn(20))
		case 3:
			ops := []string{"=", "<>", "<", "<=", ">", ">="}
			fmt.Fprintf(&b, "where obj v %s %d\n", ops[rng.Intn(len(ops))], rng.Intn(1000))
		case 4:
			fmt.Fprintf(&b, "tap obj %.2f\n", rng.Float64())
		case 5:
			fmt.Fprintf(&b, "zoomin obj %.2f\n", 1.1+rng.Float64())
		case 6:
			fmt.Fprintf(&b, "zoomout obj %.2f\n", 1.1+rng.Float64())
		case 7:
			fmt.Fprintf(&b, "idle %dms\n", 100+rng.Intn(900))
		default:
			from, to := rng.Float64(), rng.Float64()
			fmt.Fprintf(&b, "slide obj %dms %.2f %.2f\n", 200+rng.Intn(1300), from, to)
		}
	}
	b.WriteString("slide obj 1s\n")
	return b.String()
}

// wireRequests encodes a crash script into the wire requests driving
// session sid, open first.
func wireRequests(t *testing.T, seed int64, sid string) []protocol.Request {
	t.Helper()
	commands, err := script.Parse(strings.NewReader(crashScript(seed)))
	if err != nil {
		t.Fatal(err)
	}
	encoded, err := script.Encode(commands, sid)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []protocol.Request{{V: protocol.Version, Op: protocol.OpOpen, Session: sid}}
	return append(reqs, encoded...)
}

// feed routes reqs through the manager, appending a rendered
// fingerprint of every perform's result frames to out (%+v renders
// every field deterministically, and unlike JSON it survives the NaN a
// variance over zero rows legitimately produces).
func feed(t *testing.T, m interface {
	HandleRequest(protocol.Request) protocol.Response
}, reqs []protocol.Request, out *[][]byte) {
	t.Helper()
	for i, req := range reqs {
		resp := m.HandleRequest(req)
		if !resp.OK {
			t.Fatalf("request %d (%s): %s", i, req.Op, resp.Error)
		}
		if req.Op == protocol.OpPerform {
			*out = append(*out, []byte(fmt.Sprintf("%+v", resp.Results)))
		}
	}
}

// resume sends OpResume for sid and returns the replay count.
func resume(t *testing.T, db *dbtouch.DB, sid string) int {
	t.Helper()
	resp := db.Manager().HandleRequest(protocol.Request{V: protocol.Version, Op: protocol.OpResume, Session: sid})
	if !resp.OK {
		t.Fatalf("resume %q: %s", sid, resp.Error)
	}
	return resp.Replayed
}

// assertStreams compares two perform-result streams byte for byte.
func assertStreams(t *testing.T, want, got [][]byte, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: baseline %d performs, resumed run %d", label, len(want), len(got))
	}
	for i := range want {
		if string(want[i]) != string(got[i]) {
			t.Fatalf("%s: perform %d diverged:\nbaseline %s\nresumed  %s", label, i, want[i], got[i])
		}
	}
}

// tearLog appends a partial frame to sid's log — the bytes a crash
// mid-write leaves behind.
func tearLog(t *testing.T, dir, sid string, cut int) {
	t.Helper()
	frame := sessionlog.AppendFrame(nil, 1<<20, []byte(`{"op":"perform","session":"never-finished"}`))
	if cut <= 0 || cut >= len(frame) {
		cut = len(frame) / 2
	}
	f, err := os.OpenFile(filepath.Join(dir, "s-"+sid+".log"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:cut]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// runCrashResume executes one crash/resume round for one seed: baseline
// on a throwaway manager, then the same requests split at crashAt
// across two managers sharing a log directory. The first manager is
// simply abandoned (every logged request hit the file before its
// response was sent, so there is nothing to flush — closing the store
// only releases file handles, exactly what a kill -9 does).
func runCrashResume(t *testing.T, seed int64, workers int, torn bool) {
	sid := fmt.Sprintf("crash-%d", seed)
	reqs := wireRequests(t, seed, sid)

	baseDB, baseStore := newDurableInstance(t, t.TempDir())
	defer baseStore.Close()
	defer baseDB.Manager().Close()
	if err := baseDB.Manager().SetWorkers(workers); err != nil {
		t.Fatal(err)
	}
	var baseline [][]byte
	feed(t, baseDB.Manager(), reqs, &baseline)
	if len(baseline) == 0 {
		t.Fatalf("seed %d produced no performs; generator broke", seed)
	}

	rng := rand.New(rand.NewSource(seed * 77))
	crashAt := 1 + rng.Intn(len(reqs)-1) // reqs[0] is the open; crash after it

	dir := t.TempDir()
	db1, store1 := newDurableInstance(t, dir)
	if err := db1.Manager().SetWorkers(workers); err != nil {
		t.Fatal(err)
	}
	var prefix [][]byte
	feed(t, db1.Manager(), reqs[:crashAt], &prefix)
	store1.Close() // release fds; the log is already durable per-request
	if torn {
		tearLog(t, dir, sid, rng.Intn(28))
	}

	db2, store2 := newDurableInstance(t, dir)
	defer store2.Close()
	defer db2.Manager().Close()
	if err := db2.Manager().SetWorkers(workers); err != nil {
		t.Fatal(err)
	}
	if got := resume(t, db2, sid); got != crashAt {
		t.Fatalf("resume replayed %d requests, crash point was %d", got, crashAt)
	}
	suffix := prefix
	feed(t, db2.Manager(), reqs[crashAt:], &suffix)
	assertStreams(t, baseline, suffix,
		fmt.Sprintf("seed %d crash@%d torn=%v workers=%d", seed, crashAt, torn, workers))
}

// TestCrashPointEquivalence is the headline gate: randomized scripts,
// randomized crash points, clean and torn tails, at pool sizes 1, 4 and
// GOMAXPROCS. Run under -race in CI.
func TestCrashPointEquivalence(t *testing.T) {
	pools := []int{1, 4, runtime.GOMAXPROCS(0)}
	for i, workers := range pools {
		workers := workers
		for seed := int64(1); seed <= 3; seed++ {
			seed := seed + int64(i)*10
			t.Run(fmt.Sprintf("workers%d/seed%d", workers, seed), func(t *testing.T) {
				t.Parallel()
				runCrashResume(t, seed, workers, false)
			})
			t.Run(fmt.Sprintf("workers%d/seed%d/torn", workers, seed), func(t *testing.T) {
				t.Parallel()
				runCrashResume(t, seed, workers, true)
			})
		}
	}
}

// TestCrashEquivalenceConcurrentSessions crashes a manager serving
// several sessions at once and resumes them all concurrently on the
// successor — resume must isolate per-session state under contention.
func TestCrashEquivalenceConcurrentSessions(t *testing.T) {
	const sessions = 3
	type run struct {
		sid     string
		reqs    []protocol.Request
		crashAt int
		base    [][]byte
		got     [][]byte
	}
	runs := make([]*run, sessions)
	rng := rand.New(rand.NewSource(99))
	for i := range runs {
		sid := fmt.Sprintf("multi-%d", i)
		reqs := wireRequests(t, int64(40+i), sid)
		runs[i] = &run{sid: sid, reqs: reqs, crashAt: 1 + rng.Intn(len(reqs)-1)}
	}

	baseDB, baseStore := newDurableInstance(t, t.TempDir())
	defer baseStore.Close()
	defer baseDB.Manager().Close()
	for _, r := range runs {
		feed(t, baseDB.Manager(), r.reqs, &r.base)
	}

	dir := t.TempDir()
	db1, store1 := newDurableInstance(t, dir)
	var wg sync.WaitGroup
	for _, r := range runs {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			feed(t, db1.Manager(), r.reqs[:r.crashAt], &r.got)
		}()
	}
	wg.Wait()
	store1.Close()
	tearLog(t, dir, runs[1].sid, 9) // one session crashed mid-frame

	db2, store2 := newDurableInstance(t, dir)
	defer store2.Close()
	defer db2.Manager().Close()
	for _, r := range runs {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := resume(t, db2, r.sid); got != r.crashAt {
				t.Errorf("session %s: resume replayed %d, crash point %d", r.sid, got, r.crashAt)
			}
			feed(t, db2.Manager(), r.reqs[r.crashAt:], &r.got)
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for _, r := range runs {
		assertStreams(t, r.base, r.got, r.sid)
	}
}

// TestEvictResumeEquivalence covers the in-process half of session
// death: the manager evicts the session mid-script (LRU pressure in
// miniature), OpResume on the same manager replays it, and the stream
// continues as if the eviction never happened.
func TestEvictResumeEquivalence(t *testing.T) {
	const seed = 7
	sid := fmt.Sprintf("evict-%d", seed)
	reqs := wireRequests(t, seed, sid)

	baseDB, baseStore := newDurableInstance(t, t.TempDir())
	defer baseStore.Close()
	defer baseDB.Manager().Close()
	var baseline [][]byte
	feed(t, baseDB.Manager(), reqs, &baseline)

	db, store := newDurableInstance(t, t.TempDir())
	defer store.Close()
	defer db.Manager().Close()
	var got [][]byte
	cut := len(reqs) / 2
	if cut < 1 {
		cut = 1
	}
	feed(t, db.Manager(), reqs[:cut], &got)
	if !db.Manager().Evict(sid) {
		t.Fatalf("evict %q: not found", sid)
	}
	// Eviction parks the log rather than removing it (only a wire
	// OpEvict forgets history), so resume replays the full prefix.
	if got := resume(t, db, sid); got != cut {
		t.Fatalf("resume replayed %d, evicted at %d", got, cut)
	}
	feed(t, db.Manager(), reqs[cut:], &got)
	assertStreams(t, baseline, got, "evict/resume")
}
