// Package layout implements the rotate gesture's physical-design change
// (paper §2.8 "Schema and Storage Layout Gestures"): rotating a
// row-oriented table converts it to a column-store structure and vice
// versa. Because a full conversion copies all data, the change runs in
// steps — and, for large objects, converts a sample first so the user gets
// "a quick response and new data object(s) to query" while the rest
// converts in the background (during idle windows).
package layout

import (
	"fmt"
	"time"

	"dbtouch/internal/storage"
	"dbtouch/internal/vclock"
)

// CostPerRow is the virtual copy cost per tuple moved between layouts
// (read + re-encode + write of a fixed-width row).
const CostPerRow = 200 * time.Nanosecond

// Conversion is an in-progress incremental layout change.
type Conversion struct {
	src   *storage.Matrix
	dst   *storage.Matrix
	clock *vclock.Clock
	// next is the first unconverted row.
	next int
	// chunk is the number of rows converted per Step.
	chunk int
	// sampleStride > 0 means a strided preview sample was converted
	// first into Preview.
	sampleStride int
	preview      *storage.Matrix
}

// Target layout is the opposite of src's. chunk <= 0 selects 4096 rows
// per step.
func NewConversion(src *storage.Matrix, clock *vclock.Clock, chunk int) (*Conversion, error) {
	if src == nil {
		return nil, fmt.Errorf("layout: nil source matrix")
	}
	if chunk <= 0 {
		chunk = 4096
	}
	var dst *storage.Matrix
	if src.Layout() == storage.RowMajor {
		cols := make([]*storage.Column, src.NumCols())
		for i, cm := range src.Schema() {
			cols[i] = storage.NewEmptyColumn(cm.Name, cm.Type)
		}
		m, err := emptyColumnMajor(src.Name(), cols)
		if err != nil {
			return nil, err
		}
		dst = m
	} else {
		dst = storage.NewRowMajorMatrix(src.Name(), src.Schema())
	}
	return &Conversion{src: src, dst: dst, clock: clock, chunk: chunk}, nil
}

// emptyColumnMajor builds a zero-row column-major matrix with the given
// empty columns. storage.NewMatrix validates equal lengths, which all-zero
// satisfies.
func emptyColumnMajor(name string, cols []*storage.Column) (*storage.Matrix, error) {
	return storage.NewMatrix(name, cols...)
}

// Source returns the matrix being converted.
func (c *Conversion) Source() *storage.Matrix { return c.src }

// Result returns the destination matrix (complete only when Done).
func (c *Conversion) Result() *storage.Matrix { return c.dst }

// Done reports whether all rows have been converted.
func (c *Conversion) Done() bool { return c.next >= c.src.NumRows() }

// Progress reports the fraction of rows converted in [0, 1].
func (c *Conversion) Progress() float64 {
	if c.src.NumRows() == 0 {
		return 1
	}
	return float64(c.next) / float64(c.src.NumRows())
}

// Step converts the next chunk of rows, charging copy cost to the clock,
// and reports whether the conversion is now done.
func (c *Conversion) Step() (bool, error) {
	if c.Done() {
		return true, nil
	}
	hi := c.next + c.chunk
	if hi > c.src.NumRows() {
		hi = c.src.NumRows()
	}
	if err := c.src.ConvertRange(c.dst, c.next, hi); err != nil {
		return false, err
	}
	if c.clock != nil {
		c.clock.Advance(time.Duration(hi-c.next) * CostPerRow)
	}
	c.next = hi
	return c.Done(), nil
}

// Run drives Step until done.
func (c *Conversion) Run() error {
	for !c.Done() {
		if _, err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunFor drives Step while virtual time remains within budget; it returns
// the time actually consumed. Used to convert during idle windows.
func (c *Conversion) RunFor(budget time.Duration) (time.Duration, error) {
	if c.clock == nil {
		return 0, fmt.Errorf("layout: RunFor requires a clock")
	}
	start := c.clock.Now()
	for !c.Done() && c.clock.Now()-start < budget {
		if _, err := c.Step(); err != nil {
			return c.clock.Now() - start, err
		}
	}
	return c.clock.Now() - start, nil
}

// SampleFirst materializes a strided preview of the source in the target
// layout — the "create the new format for only a sample of the data"
// strategy. The preview has ceil(rows/stride) rows and is immediately
// queryable; the full conversion continues via Step.
func (c *Conversion) SampleFirst(stride int) (*storage.Matrix, error) {
	if stride <= 1 {
		return nil, fmt.Errorf("layout: sample stride must be > 1, got %d", stride)
	}
	var preview *storage.Matrix
	if c.dst.Layout() == storage.RowMajor {
		preview = storage.NewRowMajorMatrix(c.src.Name()+".preview", c.src.Schema())
	} else {
		cols := make([]*storage.Column, c.src.NumCols())
		for i, cm := range c.src.Schema() {
			cols[i] = storage.NewEmptyColumn(cm.Name, cm.Type)
		}
		m, err := emptyColumnMajor(c.src.Name()+".preview", cols)
		if err != nil {
			return nil, err
		}
		preview = m
	}
	rows := 0
	for r := 0; r < c.src.NumRows(); r += stride {
		vals, err := c.src.Row(r)
		if err != nil {
			return nil, err
		}
		if err := preview.AppendRow(vals); err != nil {
			return nil, err
		}
		rows++
	}
	if c.clock != nil {
		c.clock.Advance(time.Duration(rows) * CostPerRow)
	}
	c.sampleStride = stride
	c.preview = preview
	return preview, nil
}

// Preview returns the sample-first preview matrix, if one was built.
func (c *Conversion) Preview() *storage.Matrix { return c.preview }
