// Command dbtouch-serve runs the remote-processing deployment of the
// paper's §4 as a real network server: it holds the full data and the
// big sample hierarchies, and thin clients drive exploration sessions
// over the versioned wire protocol — gestures travel as descriptions,
// results stream back as frames.
//
//	POST /rpc                            protocol.Request → protocol.Response
//	GET  /stream?session=ID[&buffer=N]   live results — NDJSON frames, or
//	                                     the binary columnar encoding when
//	                                     the client sends
//	                                     Accept: application/x-dbtouch-bin
//	GET  /healthz                        liveness/readiness probe: 200
//	                                     "ready", or 503 "starting"/
//	                                     "draining" — what a gateway's
//	                                     health checker and the smoke
//	                                     scripts poll
//
// Usage:
//
//	dbtouch-serve                        # 1M synthetic values on :8080
//	dbtouch-serve -addr :9000 -rows 100000 -pattern levelshift
//	dbtouch-serve -csv data.csv -table readings
//	dbtouch-serve -max-sessions 1000    # LRU-evict beyond 1000 sessions
//	dbtouch-serve -admit-sessions 10000 -max-queued 4096 -workers 8
//	dbtouch-serve -live 'events:ts=int,key=string,value=int' \
//	    -retain-rows 100000 -append-rate 50000 -append-burst 10000
//	dbtouch-serve -ftdc-dir /var/lib/dbtouch/ftdc -ftdc-interval 1s \
//	    -ftdc-retain 67108864           # always-on flight recorder
//	dbtouch-serve -session-dir /var/lib/dbtouch/sessions \
//	    -session-retain 268435456       # durable, resumable sessions
//
// -session-dir turns on session durability: every executed request is
// appended to a per-session log (compacted into checkpoints past
// -session-compact bytes, the directory bounded by -session-retain),
// and a crashed or evicted session resumes exactly where it stopped —
// send {"op":"resume","session":ID} after a restart, or use a client
// with AutoResume. Live-table appends are persisted and restored at
// startup too. See docs/operations.md, "Session durability".
//
// -ftdc-dir turns on the flight recorder: every scheduler/session/
// storage gauge is sampled each -ftdc-interval into delta-of-delta
// compressed chunks under the -ftdc-retain disk budget. SIGHUP flushes
// the partial chunk; decode a capture with dbtouch-ftdc (see
// docs/operations.md, "Diagnosing an incident from an FTDC capture").
//
// -live serves an appendable table alongside the static data: clients
// feed it with the wire protocol's append op while sessions explore
// consistent snapshots of it (docs: ARCHITECTURE.md, "Ingestion &
// snapshots"). -retain-rows/-retain-age bound its history, -append-rate
// caps ingestion (rejected batches get 503 + Retry-After).
//
// Sessions run on a bounded work-stealing scheduler (pool size
// -workers, fairness quantum -fairness-budget); -admit-sessions and
// -max-queued are admission-control ceilings — past them the server
// answers HTTP 503 with a Retry-After header instead of queueing
// unboundedly. See docs/operations.md for tuning guidance.
//
// Try it:
//
//	curl -d '{"v":1,"op":"open","session":"u1"}' localhost:8080/rpc
//	curl -d '{"v":1,"op":"create","session":"u1","object":"o","create":{"table":"t","column":"v","x":2,"y":2,"w":2,"h":10}}' localhost:8080/rpc
//	curl -d '{"v":1,"op":"perform","session":"u1","object":"o","gesture":{"kind":"slide","to":1,"dur":2000000000}}' localhost:8080/rpc
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dbtouch"
	"dbtouch/internal/datagen"
	"dbtouch/internal/protocol"
	"dbtouch/internal/sessionlog"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	rows := flag.Int("rows", 1_000_000, "synthetic column length")
	pattern := flag.String("pattern", "outliers", "planted pattern: outliers, levelshift, spikes, trend, none")
	csvPath := flag.String("csv", "", "load a CSV file instead of synthetic data")
	table := flag.String("table", "t", "table name")
	column := flag.String("column", "v", "column name (synthetic data)")
	seed := flag.Int64("seed", 42, "data seed")
	maxSessions := flag.Int("max-sessions", 0, "cap live sessions (0 = unlimited; beyond the cap the least recently used session is evicted)")
	admitSessions := flag.Int("admit-sessions", 0, "hard live-session ceiling, counting the server's own \"main\" session (0 = none; beyond it opens are rejected with 503 + Retry-After instead of evicting)")
	maxQueued := flag.Int("max-queued", 0, "cap the total queued-batch backlog across sessions (0 = unlimited; at the cap, work is rejected with 503 + Retry-After)")
	workers := flag.Int("workers", 0, "scheduler pool size (0 = GOMAXPROCS)")
	budget := flag.Int("fairness-budget", 0, "events one session may absorb per scheduler dispatch (0 = default)")
	liveSpec := flag.String("live", "", "also serve an appendable live table: 'name:col=type,...' with types int, float, bool, string")
	retainRows := flag.Int("retain-rows", 0, "live table: cap retained rows (0 = unbounded)")
	retainAge := flag.Duration("retain-age", 0, "live table: drop rows older than this (0 = unbounded; requires -retain-age-column)")
	retainAgeCol := flag.String("retain-age-column", "", "live table: INT column of Unix nanosecond timestamps, nondecreasing in row order, read by -retain-age")
	appendRate := flag.Float64("append-rate", 0, "live table: append rate limit in rows/sec (0 = unlimited; over the limit the server answers 503 + Retry-After)")
	appendBurst := flag.Int("append-burst", 0, "live table: append limiter burst in rows (0 = rate for one second)")
	ftdcDir := flag.String("ftdc-dir", "", "flight recorder: capture telemetry chunks into this directory (empty = off; decode with dbtouch-ftdc)")
	ftdcInterval := flag.Duration("ftdc-interval", 0, "flight recorder: sampling tick (0 = 1s)")
	ftdcRetain := flag.Int64("ftdc-retain", 0, "flight recorder: capture directory disk budget in bytes, oldest files deleted first (0 = 64 MiB)")
	ftdcChunk := flag.Int("ftdc-chunk", 0, "flight recorder: samples per compressed chunk (0 = 300)")
	sessionDir := flag.String("session-dir", "", "session durability: persist per-session request logs into this directory (empty = off; crashed or evicted sessions become resumable via the resume op)")
	sessionRetain := flag.Int64("session-retain", 0, "session durability: log directory disk budget in bytes, oldest parked session histories deleted first (0 = unbounded)")
	sessionCompact := flag.Int64("session-compact", 0, "session durability: compact a session's log into a checkpoint past this many tail bytes (0 = 256 KiB)")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "HTTP read deadline for one request (0 = unbounded)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "HTTP keep-alive idle deadline (0 = unbounded)")
	rpcTimeout := flag.Duration("rpc-timeout", time.Minute, "wall-clock deadline for one /rpc request; past it the client gets 503 + Retry-After (0 = unbounded; /stream is never bounded)")
	drainGrace := flag.Duration("drain-grace", 0, "on SIGTERM, keep serving this long after flipping /healthz to draining, so a gateway's health checker can migrate sessions before shutdown")
	flag.Parse()

	db := dbtouch.Open()
	if *csvPath != "" {
		f, err := os.Open(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbtouch-serve:", err)
			os.Exit(1)
		}
		err = db.LoadCSV(*table, f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbtouch-serve:", err)
			os.Exit(1)
		}
	} else {
		data := datagen.Floats(datagen.Spec{Dist: datagen.Uniform, N: *rows, Seed: *seed, Min: 0, Max: 1000})
		switch *pattern {
		case "outliers":
			datagen.Plant(data, datagen.OutlierRegion, 0.6, 0.03, *seed)
		case "levelshift":
			datagen.Plant(data, datagen.LevelShift, 0.55, 0.01, *seed)
		case "spikes":
			datagen.Plant(data, datagen.Spike, 0.3, 0.05, *seed)
		case "trend":
			datagen.Plant(data, datagen.TrendRegion, 0.4, 0.1, *seed)
		}
		db.NewTable(*table).Float(*column, data).MustCreate()
	}

	var lt *dbtouch.LiveTable
	if *liveSpec != "" {
		var err error
		lt, err = createLiveTable(db, *liveSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbtouch-serve:", err)
			os.Exit(1)
		}
		if *retainRows > 0 || *retainAge > 0 {
			if err := lt.Retain(*retainRows, *retainAge, *retainAgeCol); err != nil {
				fmt.Fprintln(os.Stderr, "dbtouch-serve:", err)
				os.Exit(1)
			}
		}
	}

	mgr := db.Manager()
	if *maxSessions > 0 {
		mgr.SetMaxSessions(*maxSessions)
	}
	if *admitSessions > 0 {
		mgr.SetAdmissionCap(*admitSessions)
	}
	if *maxQueued > 0 {
		mgr.SetMaxQueuedBatches(*maxQueued)
	}
	if *workers > 0 {
		if err := mgr.SetWorkers(*workers); err != nil {
			fmt.Fprintln(os.Stderr, "dbtouch-serve:", err)
			os.Exit(1)
		}
	}
	if *budget > 0 {
		mgr.SetFairnessBudget(*budget)
	}

	var sessions *sessionlog.Store
	if *sessionDir != "" {
		var err error
		sessions, err = sessionlog.Open(sessionlog.Options{
			Dir:          *sessionDir,
			RetainBytes:  *sessionRetain,
			CompactBytes: *sessionCompact,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbtouch-serve:", err)
			os.Exit(1)
		}
		mgr.EnableDurability(sessions)
		// Replay persisted live-table appends before installing any append
		// rate limit: restoring our own durable rows must never be
		// throttled like fresh ingestion.
		tables, restored, err := mgr.RestoreTables()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbtouch-serve:", err)
			os.Exit(1)
		}
		fmt.Printf("session durability on: logs in %s, %d sessions resumable", *sessionDir, len(mgr.ResumableSessions()))
		if tables > 0 {
			fmt.Printf(", restored %d rows into %d live tables", restored, tables)
		}
		fmt.Println()
	}
	if lt != nil && *appendRate > 0 {
		burst := *appendBurst
		if burst <= 0 {
			burst = int(*appendRate)
		}
		lt.LimitAppends(*appendRate, burst)
	}

	var fr *dbtouch.FlightRecorder
	if *ftdcDir != "" {
		var err error
		fr, err = db.StartFlightRecorder(dbtouch.FlightRecorderOptions{
			Dir:          *ftdcDir,
			Interval:     *ftdcInterval,
			RetainBytes:  *ftdcRetain,
			ChunkSamples: *ftdcChunk,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbtouch-serve:", err)
			os.Exit(1)
		}
		fmt.Printf("flight recorder capturing to %s\n", *ftdcDir)
	}
	// /healthz speaks the starting/ready/draining lifecycle; the admit
	// gate turns opens and resumes away while draining so a gateway (or a
	// retrying client) places the session on a backend that will outlive
	// it. WriteTimeout stays 0 on purpose — /stream responses are
	// unbounded by design — so /rpc gets its own wall-clock deadline via
	// WithRPCTimeout instead.
	health := protocol.NewHealth()
	handlerOpts := []protocol.HandlerOption{protocol.WithAdmitGate(health.Ready)}
	if *rpcTimeout > 0 {
		handlerOpts = append(handlerOpts, protocol.WithRPCTimeout(*rpcTimeout))
	}
	mux := http.NewServeMux()
	mux.Handle("/healthz", health.Handler())
	mux.Handle("/", protocol.NewHTTPHandler(mgr, handlerOpts...))
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    64 << 10,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbtouch-serve:", err)
		os.Exit(1)
	}

	// SIGHUP flushes the partial FTDC chunk so an operator can decode the
	// capture up to the last tick without restarting the server. SIGINT
	// exits fast: session logs are written through per request, so even a
	// kill -9 loses nothing (exactly what the resume smoke test
	// exercises). SIGTERM drains: /healthz flips to draining (the admit
	// gate closes with it), -drain-grace gives a gateway's prober time to
	// migrate our sessions, in-flight requests finish, logs park, then
	// exit.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		for s := range sig {
			switch s {
			case syscall.SIGHUP:
				if fr != nil {
					if err := fr.Flush(); err != nil {
						fmt.Fprintln(os.Stderr, "dbtouch-serve: ftdc flush:", err)
					}
				}
				continue
			case syscall.SIGTERM:
				health.Set(protocol.HealthDraining)
				fmt.Println("dbtouch-serve: draining (SIGTERM)")
				time.Sleep(*drainGrace)
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				if err := srv.Shutdown(ctx); err != nil {
					srv.Close() // cut still-attached streams
				}
				cancel()
				mgr.Close()
			default: // SIGINT: fast exit, no drain
				health.Set(protocol.HealthDraining)
			}
			if fr != nil {
				if err := fr.Stop(); err != nil {
					fmt.Fprintln(os.Stderr, "dbtouch-serve: ftdc stop:", err)
				}
			}
			if sessions != nil {
				if err := sessions.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "dbtouch-serve: session log close:", err)
				}
			}
			os.Exit(0)
		}
	}()
	for _, name := range db.Tables() {
		fmt.Printf("serving table %q\n", name)
	}
	fmt.Printf("dbtouch-serve listening on %s (protocol v%d)\n", *addr, protocol.Version)
	health.Set(protocol.HealthReady)
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "dbtouch-serve:", err)
		os.Exit(1)
	}
}

// createLiveTable parses 'name:col=type,...' and registers the table.
func createLiveTable(db *dbtouch.DB, spec string) (*dbtouch.LiveTable, error) {
	name, colSpec, ok := strings.Cut(spec, ":")
	if !ok || name == "" || colSpec == "" {
		return nil, fmt.Errorf("-live: want 'name:col=type,...', got %q", spec)
	}
	b := db.NewLiveTable(name)
	for _, part := range strings.Split(colSpec, ",") {
		col, typ, ok := strings.Cut(part, "=")
		if !ok || col == "" {
			return nil, fmt.Errorf("-live: bad column spec %q", part)
		}
		switch typ {
		case "int":
			b.Int(col, nil)
		case "float":
			b.Float(col, nil)
		case "bool":
			b.Bool(col, nil)
		case "string":
			b.String(col, nil)
		default:
			return nil, fmt.Errorf("-live: column %q has unknown type %q (want int, float, bool or string)", col, typ)
		}
	}
	lt, err := b.Create()
	if err != nil {
		return nil, err
	}
	fmt.Printf("serving live table %q (appendable)\n", name)
	return lt, nil
}
