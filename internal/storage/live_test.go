package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newEventsTable(t *testing.T, rows int) *Table {
	t.Helper()
	ts := make([]int64, rows)
	val := make([]float64, rows)
	tag := make([]string, rows)
	for i := 0; i < rows; i++ {
		ts[i] = int64(i)
		val[i] = float64(i) / 2
		tag[i] = fmt.Sprintf("tag%d", i%5)
	}
	tb, err := NewTable("events",
		NewIntColumn("ts", ts),
		NewFloatColumn("value", val),
		NewStringColumn("tag", tag),
	)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	return tb
}

func eventRow(i int) []Value {
	return []Value{IntValue(int64(i)), FloatValue(float64(i) / 2), StringValue(fmt.Sprintf("tag%d", i%5))}
}

// TestLiveTableSnapshotIsolation pins the copy-on-tail contract: a
// snapshot captured before an append batch must be bit-identical after
// arbitrarily many more appends — same row count, same values, same
// epoch — while the table's own snapshot advances.
func TestLiveTableSnapshotIsolation(t *testing.T) {
	tb := newEventsTable(t, 100)
	before := tb.Snapshot()
	if before.Epoch != 1 || before.Rows != 100 {
		t.Fatalf("initial snapshot: epoch %d rows %d, want 1/100", before.Epoch, before.Rows)
	}
	col, err := before.Matrix.Column(0)
	if err != nil {
		t.Fatalf("Column: %v", err)
	}
	wantSum := int64(0)
	for i := 0; i < col.Len(); i++ {
		wantSum += col.Int(i)
	}

	for batch := 0; batch < 20; batch++ {
		rows := make([][]Value, 37)
		for i := range rows {
			rows[i] = eventRow(100 + batch*37 + i)
		}
		if _, err := tb.AppendBatch(rows); err != nil {
			t.Fatalf("AppendBatch: %v", err)
		}
	}

	if before.Rows != 100 || col.Len() != 100 {
		t.Fatalf("pinned snapshot grew: rows %d len %d", before.Rows, col.Len())
	}
	gotSum := int64(0)
	for i := 0; i < col.Len(); i++ {
		gotSum += col.Int(i)
	}
	if gotSum != wantSum {
		t.Fatalf("pinned snapshot values changed: sum %d, want %d", gotSum, wantSum)
	}
	after := tb.Snapshot()
	if after.Epoch != 21 {
		t.Fatalf("epoch after 20 batches: %d, want 21", after.Epoch)
	}
	if after.Rows != 100+20*37 {
		t.Fatalf("rows after appends: %d, want %d", after.Rows, 100+20*37)
	}
	// The new snapshot's head must equal the old snapshot's rows (no
	// reordering, pure extension while no retention is set).
	ncol, err := after.Matrix.Column(0)
	if err != nil {
		t.Fatalf("Column: %v", err)
	}
	for i := 0; i < 100; i++ {
		if ncol.Int(i) != col.Int(i) {
			t.Fatalf("row %d changed across appends: %d vs %d", i, ncol.Int(i), col.Int(i))
		}
	}
}

// TestLiveTableEmptyBatchIsNoOp: zero rows must not bump the epoch —
// replay harnesses count epochs as 1 + non-empty batches.
func TestLiveTableEmptyBatchIsNoOp(t *testing.T) {
	tb := newEventsTable(t, 10)
	before := tb.Snapshot()
	snap, err := tb.AppendBatch(nil)
	if err != nil {
		t.Fatalf("empty AppendBatch: %v", err)
	}
	if snap != before {
		t.Fatalf("empty batch published a new snapshot (epoch %d -> %d)", before.Epoch, snap.Epoch)
	}
}

// TestLiveTableMaxRowsRetention checks the row-cap policy: the visible
// row count stays bounded by MaxRows plus the compaction amortization
// slack, compaction bumps the generation, and the survivors are exactly
// the newest rows in order.
func TestLiveTableMaxRowsRetention(t *testing.T) {
	tb := newEventsTable(t, 0)
	if err := tb.SetRetention(Retention{MaxRows: 2000}); err != nil {
		t.Fatalf("SetRetention: %v", err)
	}
	const batch = 100
	next := 0
	for next < 100_000 {
		rows := make([][]Value, batch)
		for i := range rows {
			rows[i] = eventRow(next + i)
		}
		next += batch
		snap, err := tb.AppendBatch(rows)
		if err != nil {
			t.Fatalf("AppendBatch: %v", err)
		}
		// Bound: compaction triggers once stale ≥ max(1024, live), so the
		// table never exceeds 2×MaxRows plus one batch of slack.
		if snap.Rows > 2*2000+batch {
			t.Fatalf("rows %d exceeds retention bound %d", snap.Rows, 2*2000+batch)
		}
	}
	snap := tb.Snapshot()
	if snap.Gen == 0 {
		t.Fatal("100k appends against a 2k cap never compacted")
	}
	// Survivors are the newest rows: the last row is next-1, and rows
	// are consecutive from the tail backwards.
	col, err := snap.Matrix.Column(0)
	if err != nil {
		t.Fatalf("Column: %v", err)
	}
	for i := 0; i < snap.Rows; i++ {
		want := int64(next - snap.Rows + i)
		if col.Int(i) != want {
			t.Fatalf("row %d after compaction: %d, want %d", i, col.Int(i), want)
		}
	}
	// The string dictionary is shared across compactions, not rebuilt.
	tag, err := snap.Matrix.Column(2)
	if err != nil {
		t.Fatalf("Column: %v", err)
	}
	if got := tag.Value(0).S; got != fmt.Sprintf("tag%d", (next-snap.Rows)%5) {
		t.Fatalf("tag after compaction: %q", got)
	}
}

// TestLiveTableMaxAgeRetention checks the age policy end to end with a
// synthetic nondecreasing timestamp column: once enough rows age out,
// compaction drops them and the head of the surviving table is young.
func TestLiveTableMaxAgeRetention(t *testing.T) {
	tb, err := NewTable("aged", NewEmptyColumn("ts", Int64), NewEmptyColumn("v", Float64))
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	if err := tb.SetRetention(Retention{MaxAge: time.Minute, AgeColumn: "ts"}); err != nil {
		t.Fatalf("SetRetention: %v", err)
	}
	now := time.Now()
	old := now.Add(-2 * time.Minute).UnixNano()
	// One batch, 2000 ancient rows then 10 young: the stale run (2000)
	// clears both compaction thresholds (≥ 1024 and ≥ live), so the
	// publish that follows this batch has already compacted.
	rows := make([][]Value, 0, 2010)
	for i := 0; i < 2000; i++ {
		rows = append(rows, []Value{IntValue(old + int64(i)), FloatValue(float64(i))})
	}
	for i := 0; i < 10; i++ {
		rows = append(rows, []Value{IntValue(now.UnixNano() + int64(i)), FloatValue(float64(i))})
	}
	snap, err := tb.AppendBatch(rows)
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if snap.Gen != 1 {
		t.Fatalf("gen %d, want 1 (compaction after aging out the ancient run)", snap.Gen)
	}
	if snap.Rows != 10 {
		t.Fatalf("rows %d after age compaction, want 10", snap.Rows)
	}
	col, err := snap.Matrix.Column(0)
	if err != nil {
		t.Fatalf("Column: %v", err)
	}
	if col.Int(0) < now.Add(-time.Minute).UnixNano() {
		t.Fatal("stale row survived age compaction")
	}
}

// TestLiveTableRetentionNeverEmpties: an all-stale table keeps its
// newest row so pinned readers always rebind against data.
func TestLiveTableRetentionNeverEmpties(t *testing.T) {
	tb, err := NewTable("tiny", NewEmptyColumn("ts", Int64))
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	if err := tb.SetRetention(Retention{MaxAge: time.Millisecond, AgeColumn: "ts"}); err != nil {
		t.Fatalf("SetRetention: %v", err)
	}
	ancient := time.Now().Add(-time.Hour).UnixNano()
	rows := make([][]Value, 4096)
	for i := range rows {
		rows[i] = []Value{IntValue(ancient + int64(i))}
	}
	snap, err := tb.AppendBatch(rows)
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if snap.Rows < 1 {
		t.Fatalf("retention emptied the table (%d rows)", snap.Rows)
	}
}

// TestLiveTableAppendLimit: a tight token bucket admits the burst and
// rejects the excess with ErrAppendLimited; the table state is untouched
// by the rejected batch.
func TestLiveTableAppendLimit(t *testing.T) {
	tb := newEventsTable(t, 0)
	tb.SetAppendLimit(1, 10) // 1 row/sec, burst 10
	rows := make([][]Value, 10)
	for i := range rows {
		rows[i] = eventRow(i)
	}
	if _, err := tb.AppendBatch(rows); err != nil {
		t.Fatalf("burst-sized batch rejected: %v", err)
	}
	epoch := tb.Epoch()
	if _, err := tb.AppendBatch(rows); !errors.Is(err, ErrAppendLimited) {
		t.Fatalf("over-limit batch: err %v, want ErrAppendLimited", err)
	}
	if tb.Epoch() != epoch || tb.Rows() != 10 {
		t.Fatal("rejected batch mutated the table")
	}
}

// TestLiveTableConcurrentReaders races one appender against readers that
// repeatedly snapshot and fully scan — with string interning exercising
// the dictionary's internal lock. Run under -race this is the dictionary
// and snapshot memory-model test.
func TestLiveTableConcurrentReaders(t *testing.T) {
	tb := newEventsTable(t, 256)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := tb.Snapshot()
				col, err := snap.Matrix.Column(2)
				if err != nil {
					t.Error(err)
					return
				}
				if col.Len() != snap.Rows {
					t.Errorf("snapshot rows %d but column len %d", snap.Rows, col.Len())
					return
				}
				for i := 0; i < col.Len(); i += 17 {
					_ = col.Value(i).S // dictionary Lookup under reader lock
				}
			}
		}()
	}
	for b := 0; b < 200; b++ {
		rows := make([][]Value, 16)
		for i := range rows {
			rows[i] = eventRow(256 + b*16 + i)
		}
		if _, err := tb.AppendBatch(rows); err != nil {
			t.Fatalf("AppendBatch: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestLiveTableRowWidthValidation: a ragged row fails the whole batch
// atomically — nothing is appended, no epoch is published.
func TestLiveTableRowWidthValidation(t *testing.T) {
	tb := newEventsTable(t, 10)
	epoch := tb.Epoch()
	_, err := tb.AppendBatch([][]Value{eventRow(10), {IntValue(1)}})
	if err == nil {
		t.Fatal("ragged batch accepted")
	}
	if tb.Epoch() != epoch || tb.Rows() != 10 {
		t.Fatal("failed batch left partial state")
	}
}
