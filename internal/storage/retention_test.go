package storage

import (
	"fmt"
	"testing"
)

// TestPassCacheBounded asserts the retention contract on the shared
// string-predicate memo: a stream of distinct operands (a long-running
// session, or many remote clients filtering the same shared column) must
// not grow per-column memory without bound, and eviction must never
// change filter results.
func TestPassCacheBounded(t *testing.T) {
	vals := make([]string, 1000)
	for i := range vals {
		vals[i] = fmt.Sprintf("w%03d", i%50)
	}
	c := NewStringColumn("s", vals)

	baseline := c.FilterRange(0, c.Len(), RangeEq, StringValue("w007"), nil)
	for i := 0; i < 10*maxPassTables; i++ {
		c.FilterRange(0, c.Len(), RangeEq, StringValue(fmt.Sprintf("w%03d", i%200)), nil)
	}
	c.passMu.Lock()
	size := len(c.passCache)
	c.passMu.Unlock()
	if size > maxPassTables {
		t.Fatalf("pass cache grew to %d tables, cap is %d", size, maxPassTables)
	}

	// Rebuilt-after-eviction tables answer identically.
	again := c.FilterRange(0, c.Len(), RangeEq, StringValue("w007"), nil)
	if len(again) != len(baseline) {
		t.Fatalf("filter after eviction returned %d rows, want %d", len(again), len(baseline))
	}
	for i := range again {
		if again[i] != baseline[i] {
			t.Fatalf("row %d: %d != %d", i, again[i], baseline[i])
		}
	}
}
