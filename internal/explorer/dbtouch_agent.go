package explorer

import (
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/gesture"
	"dbtouch/internal/operator"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
)

// DBTouchAgent explores a task by gesturing at a dbTouch kernel: a fast
// coarse pass over the whole object, then progressively slower passes
// zoomed around the most anomalous summaries — exactly the
// coarse-to-fine, react-to-what-you-see loop the paper's exploration
// story describes.
type DBTouchAgent struct {
	// GestureDecideTime is the analyst pause between gestures (looking at
	// the fading results and choosing the next move).
	GestureDecideTime time.Duration
	// PassDuration is the slide time for the coarse pass.
	PassDuration time.Duration
	// MaxRounds bounds refinement rounds.
	MaxRounds int
	// ZThreshold is the anomaly trigger on summary z-scores.
	ZThreshold float64
}

// DefaultDBTouchAgent matches a practiced tablet user: half a second of
// looking between gestures, two-second sweeps.
func DefaultDBTouchAgent() DBTouchAgent {
	return DBTouchAgent{
		GestureDecideTime: 500 * time.Millisecond,
		PassDuration:      2 * time.Second,
		MaxRounds:         5,
		ZThreshold:        3,
	}
}

// Run explores the task and reports the discovery.
func (a DBTouchAgent) Run(task Task, cfg core.Config) (Discovery, error) {
	k := core.NewKernel(cfg)
	m, err := storage.NewMatrix(task.Name, task.Column)
	if err != nil {
		return Discovery{}, err
	}
	frame := touchos.NewRect(2, 2, 2, 10)
	obj, err := k.CreateColumnObject(m, 0, frame)
	if err != nil {
		return Discovery{}, err
	}
	obj.SetActions(core.DefaultActions())

	synth := gesture.Synth{}
	thinkTime := time.Duration(0)
	clock := k.Clock()
	gestures := 0

	// Current focus window in tuple space; starts as everything.
	lo, hi := 0, task.Rows
	dur := a.PassDuration
	sweepActions := core.DefaultActions()

	for round := 0; round < a.MaxRounds; round++ {
		// Think, then sweep the object top to bottom. Each round the
		// object is zoomed (logically) onto [lo, hi): we emulate the
		// zoom+pan by sliding over a fresh object bound to the focus
		// region when the region shrinks below the full column.
		clock.Advance(a.GestureDecideTime)
		thinkTime += a.GestureDecideTime

		sweepObj := obj
		offset := 0
		if lo > 0 || hi < task.Rows {
			sub, err := task.Column.Slice(lo, hi)
			if err != nil {
				return Discovery{}, err
			}
			subM, err := storage.NewMatrix(task.Name+".zoom", sub)
			if err != nil {
				return Discovery{}, err
			}
			sweepObj, err = k.CreateColumnObject(subM, 0, touchos.NewRect(6, 2, 2, 10))
			if err != nil {
				return Discovery{}, err
			}
			offset = lo
		}
		sweepObj.SetActions(sweepActions)

		f := sweepObj.View().Frame()
		start := clock.Now()
		events := synth.Slide(
			touchos.Point{X: f.Origin.X + f.Size.W/2, Y: f.Origin.Y + 0.05},
			touchos.Point{X: f.Origin.X + f.Size.W/2, Y: f.Origin.Y + f.Size.H - 0.05},
			start, dur,
		)
		results := k.Apply(events)
		gestures++
		if sweepObj != obj {
			k.RemoveObject(sweepObj.ID())
		}

		// React to the summaries: find the most anomalous window.
		var vals []float64
		var windows [][2]int
		for _, r := range results {
			if r.Kind != core.SummaryValue {
				continue
			}
			vals = append(vals, r.Agg)
			windows = append(windows, [2]int{r.WindowLo + offset, r.WindowHi + offset})
		}
		if len(vals) < 4 {
			dur *= 2 // too fast to see anything; slow down
			continue
		}
		wLo, wHi, found := anomalousRegion(vals, a.ZThreshold)
		if !found {
			// Nothing anomalous at this granularity. A practiced analyst
			// first switches the summary aggregation to MAX (spikes hide
			// from averages), then slows down for a finer look.
			if sweepActions.Agg != operator.Max {
				sweepActions.Agg = operator.Max
			} else {
				dur *= 2
			}
			continue
		}
		regionLo, regionHi := windows[wLo][0], windows[wHi][1]
		// Localized tightly enough?
		if regionHi-regionLo <= maxInt(task.Rows/200, 4*(2*obj.Actions().SummaryK+1)) {
			elapsed := clock.Now()
			return Discovery{
				Found: true, Lo: regionLo, Hi: regionHi,
				Elapsed:     elapsed,
				MachineTime: elapsed - thinkTime,
				TuplesRead:  obj.Hierarchy().TotalStats().ValuesRead,
				Actions:     gestures,
			}, nil
		}
		// Zoom into the region (with margin) and sweep again slower.
		margin := (regionHi - regionLo) / 2
		lo = maxInt(0, regionLo-margin)
		hi = minInt(task.Rows, regionHi+margin)
		dur = a.PassDuration
	}
	elapsed := clock.Now()
	return Discovery{
		Found: lo > 0 || hi < task.Rows, Lo: lo, Hi: hi,
		Elapsed:     elapsed,
		MachineTime: elapsed - thinkTime,
		TuplesRead:  obj.Hierarchy().TotalStats().ValuesRead,
		Actions:     gestures,
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
