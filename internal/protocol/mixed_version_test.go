package protocol_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"dbtouch/internal/protocol"
	"dbtouch/internal/script"
)

// mixedScript is deterministic and idle-free, so every streamed result is
// accounted for by a perform response.
const mixedScript = `column obj t v 2 2 2 10
summarize obj avg 10
slide obj 1s
aggregate obj sum
slide obj 800ms 0.2 0.8
`

// TestMixedVersionStreams pins the version-gate contract end to end over
// HTTP: a v2 client negotiating the binary encoding and a v1 client
// pinned to NDJSON subscribe to the same session and must observe
// identical result frames, matching the perform responses exactly.
func TestMixedVersionStreams(t *testing.T) {
	db := newInstance(t)
	srv := httptest.NewServer(protocol.NewHTTPHandler(db.Manager()))
	defer srv.Close()
	c := &protocol.Client{Base: srv.URL}
	if err := c.Open("s"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	binStream, err := c.OpenStream(ctx, "s", streamBuffer, protocol.BinaryContentType+", "+protocol.NDJSONContentType)
	if err != nil {
		t.Fatal(err)
	}
	defer binStream.Close()
	if !strings.Contains(binStream.ContentType, protocol.BinaryContentType) {
		t.Fatalf("binary-capable client negotiated %q", binStream.ContentType)
	}
	jsonStream, err := c.OpenStream(ctx, "s", streamBuffer, protocol.NDJSONContentType)
	if err != nil {
		t.Fatal(err)
	}
	defer jsonStream.Close()
	if !strings.Contains(jsonStream.ContentType, protocol.NDJSONContentType) {
		t.Fatalf("v1 client negotiated %q", jsonStream.ContentType)
	}

	var (
		mu         sync.Mutex
		binFrames  []protocol.ResultFrame
		jsonFrames []protocol.ResultFrame
	)
	collect := func(fs *protocol.FrameStream, dst *[]protocol.ResultFrame) {
		for {
			f, err := fs.Next()
			if err != nil {
				return
			}
			mu.Lock()
			*dst = append(*dst, f)
			mu.Unlock()
		}
	}
	go collect(binStream, &binFrames)
	go collect(jsonStream, &jsonFrames)

	commands, err := script.Parse(strings.NewReader(mixedScript))
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := script.Encode(commands, "s")
	if err != nil {
		t.Fatal(err)
	}
	var want []protocol.ResultFrame
	for i, req := range reqs {
		resp, err := c.Do(req)
		if err != nil {
			t.Fatalf("request %d (%s): %v", i, req.Op, err)
		}
		want = append(want, resp.Results...)
	}
	if len(want) == 0 {
		t.Fatal("script produced no results")
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		nb, nj := len(binFrames), len(jsonFrames)
		mu.Unlock()
		if nb >= len(want) && nj >= len(want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("streams stalled: binary %d, ndjson %d, want %d frames", nb, nj, len(want))
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()

	mu.Lock()
	defer mu.Unlock()
	if !reflect.DeepEqual(binFrames[:len(want)], want) {
		t.Fatalf("binary stream diverged from perform responses")
	}
	if !reflect.DeepEqual(jsonFrames[:len(want)], want) {
		t.Fatalf("ndjson stream diverged from perform responses")
	}
	// Byte-identical once re-rendered: the contract that lets either
	// encoding stand in for the other in record/replay.
	bj, _ := json.Marshal(binFrames[:len(want)])
	jj, _ := json.Marshal(jsonFrames[:len(want)])
	if string(bj) != string(jj) {
		t.Fatal("binary and ndjson streams render different JSON")
	}
}

// TestVersionEchoAndRejection pins the /rpc envelope rules: a v1 request
// is answered with a v1 envelope (byte-identical to a pre-binary server),
// a v2 request gets v2 back, and a future version is rejected.
func TestVersionEchoAndRejection(t *testing.T) {
	db := newInstance(t)
	srv := httptest.NewServer(protocol.NewHTTPHandler(db.Manager()))
	defer srv.Close()

	post := func(body string) string {
		resp, err := http.Post(srv.URL+"/rpc", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}

	v1 := post(`{"v":1,"op":"open","session":"a"}`)
	if !strings.Contains(v1, `"v":1`) || !strings.Contains(v1, `"ok":true`) {
		t.Fatalf("v1 request answered %s; want a v1 OK envelope", v1)
	}
	v2 := post(`{"v":2,"op":"open","session":"b"}`)
	if !strings.Contains(v2, `"v":2`) || !strings.Contains(v2, `"ok":true`) {
		t.Fatalf("v2 request answered %s; want a v2 OK envelope", v2)
	}
	future := post(`{"v":99,"op":"open","session":"c"}`)
	if !strings.Contains(future, `"ok":false`) || !strings.Contains(future, "unsupported version") {
		t.Fatalf("future version answered %s; want rejection", future)
	}
}

// TestBinaryClientAgainstV1Server covers the other direction of the
// version skew: a binary-capable client talking to a server that predates
// the binary encoding falls back to NDJSON via Content-Type and decodes
// the stream identically.
func TestBinaryClientAgainstV1Server(t *testing.T) {
	want := []protocol.ResultFrame{
		{Kind: "aggregate", ObjectID: 1, TupleID: 10, Agg: 1.5, N: 10},
		{Kind: "aggregate", ObjectID: 1, TupleID: 20, Agg: 2.5, N: 20},
		{Kind: "scan", ObjectID: 2, TupleID: 3, Value: "7"},
	}
	// A v1 server: ignores Accept, always answers NDJSON.
	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, f := range want {
			_ = enc.Encode(f)
		}
	}))
	defer old.Close()

	c := &protocol.Client{Base: old.URL}
	var got []protocol.ResultFrame
	err := c.Stream(context.Background(), "s", 0, func(f protocol.ResultFrame) bool {
		got = append(got, f)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fallback stream diverged:\n got %+v\nwant %+v", got, want)
	}
}
