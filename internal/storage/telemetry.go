package storage

import "sync/atomic"

// kernelBytes accumulates the bytes span kernels have scanned since
// process start: one atomic add per span call (spans are thousands of
// values, so the cost disappears). It is deliberately a cumulative
// counter, not a rate — the flight recorder captures it every tick and
// the reader differentiates it into the kernel-GB/s trajectory.
var kernelBytes atomic.Int64

// KernelBytes reports the cumulative bytes scanned by span kernels.
func KernelBytes() int64 { return kernelBytes.Load() }

// elemWidth is the in-memory width of one value in c's representation.
func (c *Column) elemWidth() int64 {
	switch {
	case c.ints != nil || c.flts != nil:
		return 8
	case c.codes != nil:
		return 4
	case c.bools != nil:
		return 1
	}
	return 8
}

// countSpan credits a kernel scan of [lo, hi) to the cumulative counter.
func (c *Column) countSpan(lo, hi int) {
	if hi > lo {
		kernelBytes.Add(int64(hi-lo) * c.elemWidth())
	}
}

// countSel credits a selection-vector kernel pass of n values.
func (c *Column) countSel(n int) {
	if n > 0 {
		kernelBytes.Add(int64(n) * c.elemWidth())
	}
}
