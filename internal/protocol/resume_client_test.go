package protocol_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"dbtouch"
	"dbtouch/internal/gesture"
	"dbtouch/internal/protocol"
	"dbtouch/internal/sessionlog"
)

// gestureTap builds a tap description with no target: Client.Perform
// names the object and the server stamps the kernel id.
func gestureTap(frac float64) gesture.Gesture { return gesture.NewTap(0, frac) }

// Resume-aware client behavior over real HTTP: AutoResume retries a
// Gone request transparently, and StreamResumed reconnects a dropped
// stream through an OpResume.

// newDurableServer starts an HTTP server over a durable session
// manager and returns its client.
func newDurableServer(t *testing.T) (*dbtouch.DB, *protocol.Client) {
	t.Helper()
	db := newInstance(t)
	st, err := sessionlog.Open(sessionlog.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	db.Manager().EnableDurability(st)
	srv := httptest.NewServer(protocol.NewHTTPHandler(db.Manager()))
	t.Cleanup(func() {
		srv.Close()
		db.Manager().Close()
		st.Close()
	})
	return db, &protocol.Client{Base: srv.URL}
}

// TestClientAutoResume: after the server evicts the session, the next
// session-scoped call on an AutoResume client succeeds transparently —
// one OpResume, one retry, no surfaced error.
func TestClientAutoResume(t *testing.T) {
	db, c := newDurableServer(t)
	c.AutoResume = true
	if err := c.Open("s"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateColumn("s", "obj", "t", "v", 2, 2, 2, 10); err != nil {
		t.Fatal(err)
	}
	first, err := c.Perform("s", "obj", gestureTap(0.5))
	if err != nil {
		t.Fatal(err)
	}

	if !db.Manager().Evict("s") {
		t.Fatal("evict failed")
	}
	// Same call again: the server answers Gone, the client resumes and
	// retries. The replayed session is bit-identical, so the second tap
	// from the same virtual-clock state gives the same frame shape.
	second, err := c.Perform("s", "obj", gestureTap(0.5))
	if err != nil {
		t.Fatalf("perform after eviction: %v", err)
	}
	if len(second) == 0 || len(first) == 0 {
		t.Fatalf("taps produced %d/%d frames", len(first), len(second))
	}

	// Without AutoResume the same failure surfaces.
	if !db.Manager().Evict("s") {
		t.Fatal("evict failed")
	}
	c2 := &protocol.Client{Base: c.Base}
	if _, err := c2.Perform("s", "obj", gestureTap(0.5)); err == nil {
		t.Fatal("plain client survived eviction without AutoResume")
	}
}

// TestClientStreamResumed: a consumer on StreamResumed keeps receiving
// frames across an eviction — the drop triggers resume + reconnect.
func TestClientStreamResumed(t *testing.T) {
	db, c := newDurableServer(t)
	c.AutoResume = true
	if err := c.Open("s"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateColumn("s", "obj", "t", "v", 2, 2, 2, 10); err != nil {
		t.Fatal(err)
	}

	frames := make(chan protocol.ResultFrame, 1024)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	streamDone := make(chan error, 1)
	go func() {
		streamDone <- c.StreamResumed(ctx, "s", 1024, func(f protocol.ResultFrame) bool {
			frames <- f
			return true
		})
	}()

	waitFrame := func(label string) {
		// Frames race the (re)subscription, so tap until one lands.
		deadline := time.After(10 * time.Second)
		for {
			if _, err := c.Perform("s", "obj", gestureTap(0.5)); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			select {
			case <-frames:
				return
			case <-deadline:
				t.Fatalf("%s: no frame arrived", label)
			case <-time.After(50 * time.Millisecond):
			}
		}
	}

	waitFrame("before eviction")
	if !db.Manager().Evict("s") {
		t.Fatal("evict failed")
	}
	waitFrame("after eviction")

	cancel()
	if err := <-streamDone; err != nil {
		t.Fatalf("StreamResumed: %v", err)
	}
}

// TestClientResumeGone: resuming a session that has no log surfaces the
// server failure, and the response marks it gone for good.
func TestClientResumeGone(t *testing.T) {
	_, c := newDurableServer(t)
	if _, err := c.Resume("never-existed"); err == nil {
		t.Fatal("resume of unknown session succeeded")
	}
	resp, err := c.Do(protocol.Request{Op: protocol.OpResume, Session: "never-existed"})
	if err == nil || !resp.Gone {
		t.Fatalf("want Gone failure, got resp=%+v err=%v", resp, err)
	}
	if errors.Is(err, protocol.ErrOverloaded) {
		t.Fatal("no-log resume misreported as overload")
	}
}
