package cache

import (
	"container/list"
	"fmt"
)

// HashTableCache retains built join hash tables keyed by (column identity,
// sample level) so later join gestures over the same copy skip the build
// (paper §2.9). A small LRU bound keeps memory predictable.
type HashTableCache struct {
	capacity int
	entries  map[string]*list.Element
	order    *list.List
	hits     int
	misses   int
}

type htEntry struct {
	key   string
	table any
}

// NewHashTableCache returns a cache bounded to capacity tables
// (capacity <= 0 selects 8).
func NewHashTableCache(capacity int) *HashTableCache {
	if capacity <= 0 {
		capacity = 8
	}
	return &HashTableCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
}

// Key builds a cache key for a column of a matrix at a sample level.
func Key(matrixName, columnName string, level int) string {
	return fmt.Sprintf("%s.%s@%d", matrixName, columnName, level)
}

// Get returns the cached table for key, if any.
func (c *HashTableCache) Get(key string) (any, bool) {
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return el.Value.(*htEntry).table, true
}

// Put stores table under key, evicting the LRU entry when full.
func (c *HashTableCache) Put(key string, table any) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*htEntry).table = table
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*htEntry).key)
		}
	}
	c.entries[key] = c.order.PushFront(&htEntry{key: key, table: table})
}

// Len reports the number of cached tables.
func (c *HashTableCache) Len() int { return c.order.Len() }

// Hits reports cache hits since construction.
func (c *HashTableCache) Hits() int { return c.hits }

// Misses reports cache misses since construction.
func (c *HashTableCache) Misses() int { return c.misses }
