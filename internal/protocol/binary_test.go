package protocol

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/storage"
)

// genResults builds a plausible result stream: mostly slide-shaped runs
// (monotone tuple ids, nondecreasing times) with occasional kind and
// object switches, covering every result kind and negative/zero edges.
func genResults(rng *rand.Rand, n int) []core.Result {
	out := make([]core.Result, 0, n)
	now := time.Duration(rng.Intn(1000)) * time.Millisecond
	tid := rng.Intn(1000)
	obj := 1 + rng.Intn(3)
	kind := core.ResultKind(rng.Intn(6))
	for len(out) < n {
		if rng.Intn(16) == 0 {
			obj = 1 + rng.Intn(3)
			kind = core.ResultKind(rng.Intn(6))
			tid = rng.Intn(100000)
		}
		tid += rng.Intn(64) - 8
		if tid < 0 {
			tid = 0
		}
		now += time.Duration(rng.Intn(70)) * time.Millisecond
		r := core.Result{
			Kind:     kind,
			ObjectID: obj,
			TupleID:  tid,
			Time:     now,
			FadeAt:   now + core.FadeAfter,
			Latency:  time.Duration(rng.Intn(70)) * time.Millisecond,
			Level:    rng.Intn(14),
		}
		switch kind {
		case core.ScanValue:
			r.Value = storage.FloatValue(rng.NormFloat64() * 1000)
		case core.AggregateValue:
			r.Agg = rng.NormFloat64() * 1e6
			r.N = int64(rng.Intn(100000))
		case core.SummaryValue:
			r.WindowLo = tid - rng.Intn(32)
			r.WindowHi = tid + rng.Intn(32)
			r.Agg = rng.NormFloat64()
			r.N = int64(r.WindowHi - r.WindowLo)
		case core.TuplePeek:
			r.Tuple = []storage.Value{storage.IntValue(int64(tid)), storage.StringValue("x")}
			r.Col = rng.Intn(8)
		case core.GroupValue:
			r.GroupKey = []string{"alpha", "beta", "gamma"}[rng.Intn(3)]
			r.Agg = float64(rng.Intn(1000))
			r.N = int64(rng.Intn(1000))
		}
		out = append(out, r)
	}
	return out
}

// TestBinaryRoundTrip: decode(encode(results)) must equal the JSON
// rendering FrameResults produces — the byte-equivalence contract that
// makes NDJSON the record/replay ground truth for both encodings.
func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		results := genResults(rng, 1+rng.Intn(300))
		want := FrameResults(results)

		enc := AppendBinaryResults(nil, "s1", 42, results)
		var got []ResultFrame
		sc := NewBinaryScanner(bytes.NewReader(enc))
		for {
			f, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("trial %d: decode: %v", trial, err)
			}
			if h := sc.Header(); h.Session != "s1" || h.Epoch != 42 {
				t.Fatalf("trial %d: header = %+v, want session s1 epoch 42", trial, h)
			}
			got = append(got, f)
		}
		if !reflect.DeepEqual(got, want) {
			for i := range want {
				if i >= len(got) || !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("trial %d: frame %d:\n got %+v\nwant %+v", trial, i, got, want[i])
				}
			}
			t.Fatalf("trial %d: got %d frames, want %d", trial, len(got), len(want))
		}

		// The JSON rendering of both paths must be identical too — what a
		// client that re-serializes sees.
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(want)
		if !bytes.Equal(gj, wj) {
			t.Fatalf("trial %d: JSON rendering differs", trial)
		}
	}
}

// TestBinaryRoundTripEdgeValues pins exactness on the numeric edges:
// NaN/±Inf aggregates, max tuple ids, zero rows.
func TestBinaryRoundTripEdgeValues(t *testing.T) {
	results := []core.Result{
		{Kind: core.AggregateValue, ObjectID: 1, Agg: math.NaN(), N: math.MaxInt64},
		{Kind: core.AggregateValue, ObjectID: 1, Agg: math.Inf(1), TupleID: math.MaxInt32},
		{Kind: core.AggregateValue, ObjectID: 1, Agg: math.Inf(-1), TupleID: 0},
		{Kind: core.AggregateValue, ObjectID: 1, Agg: math.Copysign(0, -1)},
		{Kind: core.AggregateValue, ObjectID: 1},
	}
	enc := AppendBinaryResults(nil, "", 0, results)
	want := FrameResults(results)
	sc := NewBinaryScanner(bytes.NewReader(enc))
	for i, w := range want {
		g, err := sc.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		// NaN != NaN under DeepEqual on float fields compared bitwise.
		if math.Float64bits(g.Agg) != math.Float64bits(w.Agg) {
			t.Fatalf("frame %d: agg bits %x != %x", i, math.Float64bits(g.Agg), math.Float64bits(w.Agg))
		}
		g.Agg, w.Agg = 0, 0
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("frame %d: got %+v want %+v", i, g, w)
		}
	}
}

// encodeNDJSON renders results the v1 way: one JSON object per line.
func encodeNDJSON(results []core.Result) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range results {
		_ = enc.Encode(FrameResult(r))
	}
	return buf.Bytes()
}

// TestBinaryFrameSizeRatio pins the wire-efficiency acceptance bound: a
// 4096-value frame must be at least 4x smaller than its NDJSON
// rendering (the measured ratio also lands in BENCH_kernels.json via
// the serialization benchmarks).
func TestBinaryFrameSizeRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	results := genSlideRun(rng, 4096)
	jsonBytes := len(encodeNDJSON(results))
	binBytes := len(AppendBinaryResults(nil, "bench-session", 3, results))
	ratio := float64(jsonBytes) / float64(binBytes)
	t.Logf("4096-value frame: json=%dB binary=%dB ratio=%.1fx (%.1f vs %.1f bytes/value)",
		jsonBytes, binBytes, ratio, float64(jsonBytes)/4096, float64(binBytes)/4096)
	if ratio < 4 {
		t.Fatalf("binary frame only %.2fx smaller than JSON (want >= 4x): %d vs %d bytes", ratio, binBytes, jsonBytes)
	}
}

// genSlideRun models the dominant stream shape: one object sliding in
// aggregate mode, emitting monotone ids and times.
func genSlideRun(rng *rand.Rand, n int) []core.Result {
	out := make([]core.Result, n)
	now := time.Duration(0)
	tid := 0
	for i := range out {
		tid += 1 + rng.Intn(40)
		now += time.Duration(60+rng.Intn(10)) * time.Millisecond
		out[i] = core.Result{
			Kind:     core.AggregateValue,
			ObjectID: 1,
			TupleID:  tid,
			Agg:      rng.NormFloat64() * 1e6,
			N:        int64(tid),
			Level:    3,
			Time:     now,
			FadeAt:   now + core.FadeAfter,
			Latency:  65 * time.Millisecond,
		}
	}
	return out
}

// TestBinaryDecodeRejects: corrupt and adversarial inputs error cleanly.
func TestBinaryDecodeRejects(t *testing.T) {
	good := AppendBinaryResults(nil, "s", 1, genSlideRun(rand.New(rand.NewSource(1)), 8))
	payload := good[4:] // strip length prefix

	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     append([]byte{0x00}, payload[1:]...),
		"bad version":   append([]byte{binaryMagic, 99}, payload[2:]...),
		"bad kind":      append([]byte{binaryMagic, BinaryVersion, 99}, payload[3:]...),
		"truncated":     payload[:len(payload)/2],
		"header only":   payload[:4],
		"rowcount huge": {binaryMagic, BinaryVersion, frameKindResults, 0, 0, 1, 0, 0xFF, 0xFF, 0x3F},
	}
	for name, data := range cases {
		if _, _, err := DecodeBinaryFrame(data); err == nil {
			t.Errorf("%s: decode accepted corrupt frame", name)
		}
	}

	// Truncated stream: scanner must error, not hang or panic.
	sc := NewBinaryScanner(bytes.NewReader(good[:len(good)-3]))
	var err error
	for err == nil {
		_, err = sc.Next()
	}
	if err == io.EOF {
		t.Errorf("truncated stream reported clean EOF")
	}

	// Oversized length prefix: rejected before allocation.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	sc = NewBinaryScanner(bytes.NewReader(huge))
	if _, err := sc.Next(); err == nil {
		t.Errorf("oversized length prefix accepted")
	}
}
